//! Request-scoped trace capture: a [`RequestCtx`] collects the spans and
//! counters recorded on every thread attached to it, independently of the
//! process-global recorder.
//!
//! The global recorder ([`crate::start`] / [`crate::finish`]) aggregates a
//! whole run; a serving daemon instead needs one span tree **per request**,
//! captured concurrently with other requests and regardless of whether the
//! global trace is armed. A [`RequestCtx`] owns a shared sink; attaching it
//! to a thread (via [`RequestCtx::attach`] or a cloned, `Send`
//! [`RequestHandle`]) routes every span closed and counter incremented on
//! that thread into the sink as well. [`RequestCtx::finish`] drains the sink
//! into an ordinary [`Trace`], so all existing exports (JSONL, folded,
//! Prometheus) work unchanged on per-request data.
//!
//! # Cost when idle
//!
//! A process-wide attachment count gates the capture path: when no thread
//! has a request attached, instrumentation pays one extra relaxed atomic
//! load over the plain disabled path and nothing else.
//!
//! # Example
//!
//! ```
//! use xring_obs::{RequestCtx, RequestId};
//!
//! let ctx = RequestCtx::new(RequestId::mint(7, 1, 42));
//! {
//!     let _scope = ctx.attach();
//!     let _span = xring_obs::span("handler");
//!     xring_obs::counter("handler.items", 3);
//! }
//! let trace = ctx.finish();
//! assert_eq!(trace.spans.len(), 1);
//! assert_eq!(trace.total("handler.items"), 3);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::trace::{SpanRecord, Trace};

/// Number of currently attached request scopes, process-wide. Zero means
/// the per-span capture check is a single relaxed load.
static REQ_ATTACHED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The request sink attached to this thread, if any.
    static CURRENT: RefCell<Option<Arc<Sink>>> = const { RefCell::new(None) };
}

/// The shared capture buffer behind one request: every thread attached to
/// the request pushes into the same sink.
#[derive(Debug)]
pub(crate) struct Sink {
    id: u128,
    spans: Mutex<Vec<SpanRecord>>,
    totals: Mutex<BTreeMap<&'static str, u64>>,
}

impl Sink {
    fn new(id: u128) -> Self {
        Sink {
            id,
            spans: Mutex::new(Vec::new()),
            totals: Mutex::new(BTreeMap::new()),
        }
    }

    /// Locks a sink mutex, surviving poisoning: a panicking handler must
    /// not lose the request's trace (the flight recorder wants it most
    /// precisely then).
    fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub(crate) fn push_span(&self, record: SpanRecord) {
        Self::lock(&self.spans).push(record);
    }

    pub(crate) fn add_totals(&self, counters: &BTreeMap<&'static str, u64>) {
        if counters.is_empty() {
            return;
        }
        let mut totals = Self::lock(&self.totals);
        for (&name, &value) in counters {
            *totals.entry(name).or_insert(0) += value;
        }
    }

    pub(crate) fn add_total(&self, name: &'static str, delta: u64) {
        *Self::lock(&self.totals).entry(name).or_insert(0) += delta;
    }
}

/// `true` when the calling thread has a request attached. One thread-local
/// peek after the global fast gate.
pub(crate) fn attached() -> bool {
    if REQ_ATTACHED.load(Ordering::Relaxed) == 0 {
        return false;
    }
    CURRENT.with(|c| c.borrow().is_some())
}

/// The sink attached to the calling thread, if any. The `None` path is one
/// relaxed atomic load when no request is attached anywhere in the process.
pub(crate) fn current_sink() -> Option<Arc<Sink>> {
    if REQ_ATTACHED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// A 128-bit request identifier, rendered as 32 lowercase hex digits (the
/// `trace-id` field of a W3C `traceparent` header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u128);

impl RequestId {
    /// Deterministically derives an id from a process seed, a
    /// monotonically increasing request counter, and a per-connection
    /// nonce. The same triple always yields the same id, so replayed
    /// logs line up across runs; distinct triples yield distinct ids
    /// with overwhelming probability (two independent 64-bit mixes).
    pub fn mint(seed: u64, counter: u64, nonce: u64) -> Self {
        let high = splitmix(seed ^ splitmix(counter));
        let low = splitmix(nonce ^ splitmix(counter.rotate_left(32) ^ seed));
        let id = (u128::from(high) << 64) | u128::from(low);
        // Id 0 is reserved as "absent" by traceparent; nudge it.
        RequestId(if id == 0 { 1 } else { id })
    }

    /// Wraps a raw 128-bit value (e.g. parsed from an inbound header).
    pub fn from_u128(raw: u128) -> Self {
        RequestId(if raw == 0 { 1 } else { raw })
    }

    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// The canonical 32-digit lowercase hex rendering.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses exactly 32 hex digits (case-insensitive); rejects the
    /// all-zero id, which `traceparent` defines as invalid.
    pub fn parse_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let raw = u128::from_str_radix(s, 16).ok()?;
        if raw == 0 {
            return None;
        }
        Some(RequestId(raw))
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The capture context for one request: owns the sink, hands out
/// attachment guards and `Send` handles, and drains into a [`Trace`].
#[derive(Debug)]
pub struct RequestCtx {
    sink: Arc<Sink>,
}

impl RequestCtx {
    /// Creates a context for the given id with an empty sink.
    pub fn new(id: RequestId) -> Self {
        RequestCtx {
            sink: Arc::new(Sink::new(id.as_u128())),
        }
    }

    /// This request's id.
    pub fn id(&self) -> RequestId {
        RequestId::from_u128(self.sink.id)
    }

    /// Attaches the request to the calling thread until the returned
    /// guard drops. Spans closed and counters incremented while attached
    /// are captured into this request's sink (in addition to the global
    /// recorder when that is enabled).
    pub fn attach(&self) -> RequestScope {
        RequestScope::enter(Arc::clone(&self.sink))
    }

    /// A cloneable, `Send` handle for carrying the request across thread
    /// boundaries (worker pools); each worker calls
    /// [`RequestHandle::attach`] for its own scope.
    pub fn handle(&self) -> RequestHandle {
        RequestHandle {
            sink: Arc::clone(&self.sink),
        }
    }

    /// Drains everything captured so far into a [`Trace`]. Call after
    /// every scope and worker has detached; spans closed later (through a
    /// still-live [`RequestHandle`]) land in the sink but not in this
    /// trace.
    pub fn finish(self) -> Trace {
        let spans = std::mem::take(&mut *Sink::lock(&self.sink.spans));
        let totals = std::mem::take(&mut *Sink::lock(&self.sink.totals));
        Trace {
            spans,
            gauges: Vec::new(),
            totals: totals
                .into_iter()
                .map(|(name, value)| (name.to_owned(), value))
                .collect(),
            hists: Vec::new(),
        }
    }
}

/// A cloneable, `Send` handle to a request's sink, for worker threads.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    sink: Arc<Sink>,
}

impl RequestHandle {
    /// The request's id.
    pub fn id(&self) -> RequestId {
        RequestId::from_u128(self.sink.id)
    }

    /// Attaches the request to the calling thread until the guard drops.
    pub fn attach(&self) -> RequestScope {
        RequestScope::enter(Arc::clone(&self.sink))
    }
}

/// RAII guard for a thread's request attachment; restores the previously
/// attached request (if any) on drop. Not `Send`: the guard must drop on
/// the thread that created it.
#[derive(Debug)]
pub struct RequestScope {
    prev: Option<Arc<Sink>>,
    // A raw-pointer phantom keeps the guard !Send + !Sync without unsafe.
    _not_send: PhantomData<*const ()>,
}

impl RequestScope {
    fn enter(sink: Arc<Sink>) -> Self {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(sink));
        REQ_ATTACHED.fetch_add(1, Ordering::Relaxed);
        RequestScope {
            prev,
            _not_send: PhantomData,
        }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        REQ_ATTACHED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The id of the request attached to the calling thread, if any. Logging
/// uses this to stamp events with the request id automatically.
pub fn current_request_id() -> Option<RequestId> {
    current_sink().map(|s| RequestId::from_u128(s.id))
}

/// A `Send` handle to the request attached to the calling thread, if any.
/// Worker pools capture this before spawning so jobs inherit the request.
pub fn current_request() -> Option<RequestHandle> {
    current_sink().map(|sink| RequestHandle { sink })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_deterministic_and_distinct() {
        let a = RequestId::mint(1, 1, 1);
        let b = RequestId::mint(1, 1, 1);
        let c = RequestId::mint(1, 2, 1);
        let d = RequestId::mint(2, 1, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(c, d);
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let id = RequestId::mint(3, 9, 27);
        let hex = id.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(RequestId::parse_hex(&hex), Some(id));
        assert_eq!(RequestId::parse_hex(&hex.to_uppercase()), Some(id));
        assert!(RequestId::parse_hex("short").is_none());
        assert!(RequestId::parse_hex(&"0".repeat(32)).is_none());
        assert!(RequestId::parse_hex(&"g".repeat(32)).is_none());
        assert_eq!(format!("{id}"), hex);
    }

    #[test]
    fn captures_spans_without_global_recorder() {
        let _lock = crate::test_guard();
        assert!(!crate::enabled());
        let ctx = RequestCtx::new(RequestId::mint(5, 1, 0));
        {
            let _scope = ctx.attach();
            let _outer = crate::span("request");
            {
                let _inner = crate::span_labelled("phase", "ring");
                crate::counter("phase.items", 4);
            }
            crate::counter("loose", 2);
        }
        // Detached again: this span must not leak into the request.
        {
            let _stray = crate::span("stray");
        }
        let trace = ctx.finish();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["phase", "request"]);
        let request = trace.find("request").unwrap();
        let phase = trace.find("phase").unwrap();
        assert_eq!(phase.parent, request.id);
        assert_eq!(phase.label.as_deref(), Some("ring"));
        assert_eq!(trace.total("phase.items"), 4);
        assert_eq!(trace.total("loose"), 2);
    }

    #[test]
    fn capture_is_concurrent_with_global_trace() {
        let _lock = crate::test_guard();
        crate::start();
        let ctx = RequestCtx::new(RequestId::mint(8, 1, 0));
        {
            let _scope = ctx.attach();
            let _s = crate::span("both");
            crate::counter("both.count", 1);
        }
        let req_trace = ctx.finish();
        let global = crate::finish();
        assert_eq!(req_trace.spans.len(), 1);
        assert_eq!(req_trace.total("both.count"), 1);
        assert_eq!(global.spans.len(), 1, "global recorder still sees it");
        assert_eq!(global.total("both.count"), 1);
    }

    #[test]
    fn handles_carry_requests_across_threads() {
        let _lock = crate::test_guard();
        let ctx = RequestCtx::new(RequestId::mint(9, 1, 0));
        let handle = ctx.handle();
        assert_eq!(handle.id(), ctx.id());
        let worker = std::thread::spawn(move || {
            let _scope = handle.attach();
            assert_eq!(current_request_id(), Some(handle.id()));
            let _s = crate::span("worker-phase");
            crate::counter("worker.count", 3);
        });
        worker.join().unwrap();
        let trace = ctx.finish();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "worker-phase");
        assert_eq!(trace.total("worker.count"), 3);
    }

    #[test]
    fn nested_attach_restores_previous_request() {
        let _lock = crate::test_guard();
        let a = RequestCtx::new(RequestId::mint(1, 10, 0));
        let b = RequestCtx::new(RequestId::mint(1, 11, 0));
        let _sa = a.attach();
        assert_eq!(current_request_id(), Some(a.id()));
        {
            let _sb = b.attach();
            assert_eq!(current_request_id(), Some(b.id()));
            let _s = crate::span("inner");
        }
        assert_eq!(current_request_id(), Some(a.id()));
        {
            let _s = crate::span("outer");
        }
        drop(_sa);
        assert_eq!(current_request_id(), None);
        assert_eq!(b.finish().spans[0].name, "inner");
        assert_eq!(a.finish().spans[0].name, "outer");
    }

    #[test]
    fn concurrent_requests_keep_their_own_span_trees() {
        let _lock = crate::test_guard();
        let ctxs: Vec<RequestCtx> = (0..4)
            .map(|i| RequestCtx::new(RequestId::mint(4, i, 0)))
            .collect();
        std::thread::scope(|scope| {
            for (i, ctx) in ctxs.iter().enumerate() {
                let handle = ctx.handle();
                scope.spawn(move || {
                    let _scope = handle.attach();
                    let _root = crate::span("request");
                    for _ in 0..=i {
                        let _child = crate::span("phase");
                        crate::counter("phase.count", 1);
                    }
                });
            }
        });
        for (i, ctx) in ctxs.into_iter().enumerate() {
            let trace = ctx.finish();
            let root = trace.find("request").unwrap().id;
            assert_eq!(trace.children(root).len(), i + 1);
            assert_eq!(trace.total("phase.count"), (i + 1) as u64);
        }
    }
}
