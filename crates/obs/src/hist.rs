//! Lock-free log-bucketed histograms.
//!
//! A [`Histogram`] counts `u64` samples (the workspace convention is
//! microseconds) into power-of-two buckets: bucket `i` holds samples
//! `v` with `2^(i-1) < v <= 2^i` (bucket 0 holds `v <= 1`). The record
//! path is a handful of relaxed atomic adds — no locks, no allocation —
//! so histograms are safe to feed from engine workers and solver loops.
//!
//! Histograms registered through [`histogram`]/[`record_hist`] live in
//! a process-global registry: [`crate::start`] resets them and
//! [`crate::finish`] snapshots every non-empty one into
//! [`crate::Trace::hists`], mirroring the counter-totals lifecycle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Number of finite buckets. The largest finite upper bound is
/// `2^(HIST_BUCKETS-1)` (≈ 6.4 days when samples are microseconds);
/// larger samples land in the overflow (`+Inf`) bucket.
pub const HIST_BUCKETS: usize = 40;

/// Finite bucket index for `value`: the smallest `i` with
/// `value <= 2^i`, saturating into the overflow slot.
fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        // ceil(log2(value)) for value >= 2.
        let idx = 64 - (value - 1).leading_zeros() as usize;
        idx.min(HIST_BUCKETS)
    }
}

/// A lock-free histogram over `u64` samples.
///
/// All mutation is relaxed-atomic; a [`Histogram`] can be shared across
/// threads by reference. Obtain process-global instances through
/// [`histogram`] (or record in one shot with [`record_hist`]); local
/// instances (`Histogram::new()`) are useful when the recording scope
/// owns its own aggregation, as the engine does for queue waits.
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `(2^(i-1), 2^i]`; the final slot
    /// (`buckets[HIST_BUCKETS]`) counts overflow samples.
    buckets: [AtomicU64; HIST_BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS + 1],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: four relaxed atomic operations.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Clears every bucket and total.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution, labelled `name`.
    ///
    /// Trailing all-zero buckets are trimmed (at least one bucket is
    /// always kept) so exports stay proportional to the data range.
    pub fn snapshot(&self, name: impl Into<String>) -> HistogramSnapshot {
        let mut buckets: Vec<(u64, u64)> = (0..HIST_BUCKETS)
            .map(|i| (1u64 << i, self.buckets[i].load(Ordering::Relaxed)))
            .collect();
        while buckets.len() > 1 && buckets.last().is_some_and(|&(_, c)| c == 0) {
            buckets.pop();
        }
        HistogramSnapshot {
            name: name.into(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            overflow: self.buckets[HIST_BUCKETS].load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An immutable copy of a [`Histogram`] at snapshot time: the payload
/// of [`crate::Trace::hists`] and the input to the Prometheus exporter.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name (`"engine.queue_wait_us"`).
    pub name: String,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample observed (0 when empty).
    pub max: u64,
    /// Samples larger than the last finite bucket bound (the `+Inf`
    /// remainder).
    pub overflow: u64,
    /// `(le, count)` pairs: per-bucket (non-cumulative) sample counts
    /// with inclusive upper bounds `le = 2^i`, trailing zeros trimmed.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (`0.0 < q <= 1.0`):
    /// the bucket bound containing the sample of that rank, clamped to
    /// the observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(le, c) in &self.buckets {
            cumulative += c;
            if cumulative >= rank {
                return le.min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The process-global histogram registry. Entries are leaked
/// intentionally: handles are `&'static` so hot paths can cache them
/// and record without touching the registry lock.
static REGISTRY: OnceLock<Mutex<Vec<(&'static str, &'static Histogram)>>> = OnceLock::new();

fn lock_registry() -> MutexGuard<'static, Vec<(&'static str, &'static Histogram)>> {
    REGISTRY
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Returns the process-global histogram named `name`, creating it on
/// first use. The handle is `&'static`: cache it outside loops — the
/// lookup takes the registry lock, recording does not.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut registry = lock_registry();
    if let Some(&(_, h)) = registry.iter().find(|&&(n, _)| n == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    registry.push((name, h));
    h
}

/// Records one sample into the global histogram `name`, if collection
/// is enabled ([`crate::start`]); a single relaxed atomic load
/// otherwise. Takes the registry lock per call — for per-iteration hot
/// loops, cache [`histogram`]'s handle instead.
pub fn record_hist(name: &'static str, value: u64) {
    if !crate::trace::enabled() {
        return;
    }
    histogram(name).record(value);
}

/// Clears every registered histogram (called by [`crate::start`]).
pub(crate) fn reset_all() {
    for &(_, h) in lock_registry().iter() {
        h.reset();
    }
}

/// Snapshots every registered histogram with at least one sample,
/// sorted by name (called by [`crate::finish`]).
pub(crate) fn snapshot_all() -> Vec<HistogramSnapshot> {
    let mut snaps: Vec<HistogramSnapshot> = lock_registry()
        .iter()
        .filter(|&&(_, h)| h.count() > 0)
        .map(|&(name, h)| h.snapshot(name))
        .collect();
    snaps.sort_by(|a, b| a.name.cmp(&b.name));
    snaps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_inclusive_powers_of_two() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 5, 8, 9, 1024, 1025] {
            h.record(v);
        }
        let s = h.snapshot("t");
        let count_at = |le: u64| s.buckets.iter().find(|&&(l, _)| l == le).map(|&(_, c)| c);
        assert_eq!(count_at(1), Some(2)); // 0, 1
        assert_eq!(count_at(2), Some(1)); // 2
        assert_eq!(count_at(4), Some(2)); // 3, 4
        assert_eq!(count_at(8), Some(2)); // 5, 8
        assert_eq!(count_at(16), Some(1)); // 9
        assert_eq!(count_at(1024), Some(1)); // 1024
        assert_eq!(count_at(2048), Some(1)); // 1025
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 2081);
        assert_eq!(s.max, 1025);
        assert_eq!(s.overflow, 0);
        // Trailing buckets beyond the data range are trimmed.
        assert_eq!(s.buckets.last().map(|&(le, _)| le), Some(2048));
    }

    #[test]
    fn overflow_samples_count_toward_totals_but_not_finite_buckets() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot("t");
        assert_eq!(s.count, 1);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 0);
        assert_eq!(s.quantile(0.5), u64::MAX, "quantile falls back to max");
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 100);
        // p50 rank 50 -> bucket le=64 (cumulative through 64 covers 64
        // samples); p99 rank 99 -> le=128 clamped to max=100.
        assert_eq!(s.quantile(0.5), 64);
        assert_eq!(s.quantile(0.99), 100);
        assert_eq!(s.quantile(1.0), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        let empty = Histogram::new().snapshot("e");
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(7);
        h.record(70);
        h.reset();
        let s = h.snapshot("t");
        assert_eq!((s.count, s.sum, s.max, s.overflow), (0, 0, 0, 0));
        assert!(s.buckets.iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn concurrent_writers_totals_match_per_thread_sums() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                    }
                });
            }
        });
        let s = h.snapshot("t");
        assert_eq!(s.count, THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(s.sum, n * (n - 1) / 2);
        assert_eq!(s.max, n - 1);
        assert_eq!(
            s.overflow + s.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
            s.count,
            "every sample lands in exactly one bucket"
        );
    }

    #[test]
    fn registry_returns_the_same_instance_per_name() {
        let a = histogram("hist.test.registry");
        let b = histogram("hist.test.registry");
        assert!(std::ptr::eq(a, b));
        assert!(!std::ptr::eq(a, histogram("hist.test.other")));
    }

    #[test]
    fn record_hist_is_gated_on_enabled() {
        let _lock = crate::test_guard();
        crate::start();
        crate::finish(); // leave collection disabled
        let before = histogram("hist.test.gated").count();
        record_hist("hist.test.gated", 1);
        assert_eq!(histogram("hist.test.gated").count(), before);
        crate::start();
        record_hist("hist.test.gated", 5);
        let trace = crate::finish();
        let snap = trace.hist("hist.test.gated").expect("snapshotted");
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 5);
    }
}
