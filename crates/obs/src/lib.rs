//! Phase-level observability for the XRing synthesis pipeline.
//!
//! This crate is the workspace's tracing and metrics layer: hierarchical
//! **spans** (enter/exit with monotonic timing, thread id and parent
//! links), plus named **counters** and **gauges**, recorded into one
//! process-global trace buffer and drained as a [`Trace`] value that can
//! be exported as a JSONL event stream or as the collapsed-stack text
//! format consumed by `inferno` / `flamegraph.pl`.
//!
//! On top of that sit lock-free log-bucketed **histograms**
//! ([`record_hist`], snapshotted into [`Trace::hists`] with
//! p50/p90/p99/max), a bounded **time-series [`Sampler`]** for
//! gauge-like values, and a **Prometheus text-exposition** renderer
//! ([`Trace::write_prometheus`], format 0.0.4) so a finished run can be
//! scraped file-wise today and over HTTP later.
//!
//! For serving workloads there are additionally **request-scoped
//! capture** ([`RequestCtx`]: per-request span trees collected
//! concurrently and independently of the global recorder) and a
//! structured, leveled **JSONL [`log`]** whose events automatically carry
//! the attached request id.
//!
//! # Design
//!
//! * **Std-only, zero dependencies** — like every other crate in the
//!   workspace (see `DESIGN.md` §5).
//! * **Near-zero cost when disabled.** Collection is off by default;
//!   every instrumentation call starts with a single relaxed atomic
//!   load and returns immediately when tracing is off. No allocation,
//!   no locking, no timestamps are taken on the disabled path, so
//!   instrumented hot loops (branch-and-bound nodes, simplex pivots)
//!   pay essentially nothing in production runs.
//! * **Global, not threaded through APIs.** The recorder is a static
//!   [`std::sync::OnceLock`]; instrumentation points call free
//!   functions ([`span`], [`counter`], [`gauge`]) so no layer of the
//!   pipeline needs its signature changed to participate.
//! * **Spans are RAII guards.** [`span`] returns a [`Span`] whose
//!   `Drop` records the exit; a thread-local stack provides the parent
//!   link, so nesting follows lexical scope on each thread.
//! * **Counters attach to the innermost open span** on the calling
//!   thread (and to the global totals); with no span open they only
//!   count toward the totals.
//!
//! # Example
//!
//! ```
//! let _lock = xring_obs::test_guard(); // serialize: the trace is global
//! xring_obs::start();
//! {
//!     let _outer = xring_obs::span("synth");
//!     {
//!         let _inner = xring_obs::span("ring-milp");
//!         xring_obs::counter("milp.nodes", 42);
//!     }
//! }
//! let trace = xring_obs::finish();
//! assert_eq!(trace.spans.len(), 2);
//! assert_eq!(trace.total("milp.nodes"), 42);
//! let milp = trace.find("ring-milp").expect("recorded");
//! let synth = trace.find("synth").expect("recorded");
//! assert_eq!(milp.parent, synth.id);
//!
//! let mut folded = Vec::new();
//! trace.write_folded(&mut folded).unwrap();
//! let text = String::from_utf8(folded).unwrap();
//! assert!(text.contains("synth;ring-milp "));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod export;
mod hist;
pub mod log;
mod prom;
mod reqctx;
mod sampler;
mod trace;

pub use export::{folded_frame, json_escape, TraceFormat};
pub use hist::{histogram, record_hist, Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use prom::{sanitize_metric_name, validate_exposition};
pub use reqctx::{
    current_request, current_request_id, RequestCtx, RequestHandle, RequestId, RequestScope,
};
pub use sampler::Sampler;
pub use trace::{
    counter, enabled, finish, gauge, span, span_labelled, start, test_guard, GaugeRecord, Span,
    SpanRecord, Trace,
};
