//! A bounded time-series sampler for gauge-like values.
//!
//! Histograms ([`crate::Histogram`]) lose ordering; raw gauges keep
//! every sample. A [`Sampler`] sits between: it retains a bounded,
//! time-stamped subset of a value series (the MILP optimality gap over
//! a solve, a queue depth over a batch) by stride decimation — when the
//! buffer fills, every other retained sample is dropped and the keep
//! stride doubles, so memory stays `O(capacity)` while the retained
//! points remain evenly spread over the full series.

use crate::trace;

/// A bounded, stride-decimating recorder of `(time, value)` samples.
///
/// Single-owner by design (methods take `&mut self`); each recording
/// scope owns its sampler. Retained samples are pushed into the global
/// trace as gauge records — with their **original** timestamps — on
/// [`flush`](Sampler::flush) or drop.
#[derive(Debug)]
pub struct Sampler {
    name: &'static str,
    capacity: usize,
    /// Keep one sample per `stride` calls to [`record`](Sampler::record).
    stride: u64,
    /// Total `record` calls so far (kept + skipped).
    seen: u64,
    samples: Vec<(u64, f64)>,
}

impl Sampler {
    /// A sampler for gauge `name` retaining at most `capacity` samples
    /// (minimum 2).
    pub fn new(name: &'static str, capacity: usize) -> Self {
        Sampler {
            name,
            capacity: capacity.max(2),
            stride: 1,
            seen: 0,
            samples: Vec::new(),
        }
    }

    /// Offers one sample. No-op (one relaxed atomic load) when
    /// collection is disabled; otherwise kept iff the call index is a
    /// multiple of the current stride.
    pub fn record(&mut self, value: f64) {
        if !trace::enabled() {
            return;
        }
        let keep = self.seen.is_multiple_of(self.stride);
        self.seen += 1;
        if !keep {
            return;
        }
        if self.samples.len() == self.capacity {
            // Retained call indices are 0, s, 2s, …; keeping every
            // other one leaves 0, 2s, 4s, … — exactly the multiples of
            // the doubled stride, so decimation stays self-consistent.
            let mut i = 0usize;
            self.samples.retain(|_| {
                let keep = i.is_multiple_of(2);
                i += 1;
                keep
            });
            self.stride *= 2;
        }
        self.samples.push((trace::epoch_now_ns(), value));
    }

    /// Number of currently retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples offered via [`record`](Sampler::record) while
    /// collection was enabled, kept or not. Together with
    /// [`retained`](Sampler::retained) this states the effective
    /// resolution of an export instead of implying full fidelity.
    pub fn recorded(&self) -> u64 {
        self.seen
    }

    /// Number of currently retained samples (alias of
    /// [`len`](Sampler::len), named for resolution reporting).
    pub fn retained(&self) -> usize {
        self.samples.len()
    }

    /// The current keep stride: one retained sample per `stride` offered
    /// samples. 1 until the first decimation; doubles on each.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Pushes every retained sample into the global trace as gauge
    /// records carrying their original capture timestamps, then clears
    /// the buffer. Dropped samples are gone; flushing twice is a no-op.
    ///
    /// When any decimation happened (`stride > 1`), three companion
    /// gauges — `<name>.sampler_recorded`, `<name>.sampler_retained`,
    /// `<name>.sampler_stride` — are emitted alongside, so consumers of
    /// the export can tell decimated series from full-fidelity ones.
    pub fn flush(&mut self) {
        if self.samples.is_empty() {
            return;
        }
        let resolution = (self.stride > 1).then(|| {
            (
                self.seen,
                self.samples.len(),
                self.stride,
                self.samples.last().map_or(0, |&(at_ns, _)| at_ns),
            )
        });
        for (at_ns, value) in self.samples.drain(..) {
            trace::push_gauge_sample(self.name, value, at_ns);
        }
        if let Some((recorded, retained, stride, at_ns)) = resolution {
            let emit = |suffix: &str, value: f64| {
                trace::push_gauge_sample(&format!("{}.{suffix}", self.name), value, at_ns);
            };
            emit("sampler_recorded", recorded as f64);
            emit("sampler_retained", retained as f64);
            emit("sampler_stride", stride as f64);
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{finish, start, test_guard};

    #[test]
    fn disabled_sampler_retains_nothing() {
        let _lock = test_guard();
        start();
        finish();
        let mut s = Sampler::new("sampler.test.off", 8);
        s.record(1.0);
        assert!(s.is_empty());
    }

    #[test]
    fn decimation_bounds_memory_and_spreads_samples() {
        let _lock = test_guard();
        start();
        let mut s = Sampler::new("sampler.test.decimate", 8);
        for i in 0..1000 {
            s.record(i as f64);
        }
        assert!(s.len() <= 8, "capacity bound violated: {}", s.len());
        assert!(s.len() >= 4, "decimation dropped too much: {}", s.len());
        // Retained values are the multiples of the final stride, in
        // order — evenly spread over the series.
        let stride = s.stride as f64;
        let values: Vec<f64> = s.samples.iter().map(|&(_, v)| v).collect();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, i as f64 * stride, "values: {values:?}");
        }
        finish();
    }

    #[test]
    fn flush_emits_gauges_with_original_timestamps() {
        let _lock = test_guard();
        start();
        let mut s = Sampler::new("sampler.test.flush", 4);
        s.record(1.0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.record(2.0);
        let first_ts = s.samples[0].0;
        s.flush();
        s.flush(); // idempotent
        let trace = finish();
        let gauges: Vec<_> = trace
            .gauges
            .iter()
            .filter(|g| g.name == "sampler.test.flush")
            .collect();
        assert_eq!(gauges.len(), 2);
        assert_eq!(gauges[0].at_ns, first_ts, "original capture time kept");
        assert!(gauges[0].at_ns < gauges[1].at_ns);
        assert_eq!(gauges[0].value, 1.0);
        assert_eq!(gauges[1].value, 2.0);
    }

    #[test]
    fn resolution_accessors_report_decimation() {
        let _lock = test_guard();
        start();
        let mut s = Sampler::new("sampler.test.resolution", 8);
        for i in 0..100 {
            s.record(i as f64);
        }
        assert_eq!(s.recorded(), 100);
        assert_eq!(s.retained(), s.len());
        assert!(s.stride() > 1, "100 samples into capacity 8 must decimate");
        let retained = s.retained();
        s.flush();
        let trace = finish();
        let gauge = |name: &str| {
            trace
                .gauges
                .iter()
                .find(|g| g.name == name)
                .map(|g| g.value)
        };
        assert_eq!(
            gauge("sampler.test.resolution.sampler_recorded"),
            Some(100.0)
        );
        assert_eq!(
            gauge("sampler.test.resolution.sampler_retained"),
            Some(retained as f64)
        );
        assert!(gauge("sampler.test.resolution.sampler_stride").unwrap() > 1.0);
    }

    #[test]
    fn full_fidelity_flush_emits_no_resolution_gauges() {
        let _lock = test_guard();
        start();
        let mut s = Sampler::new("sampler.test.fullfi", 8);
        s.record(1.0);
        s.record(2.0);
        assert_eq!(s.recorded(), 2);
        assert_eq!(s.stride(), 1);
        s.flush();
        let trace = finish();
        assert!(trace
            .gauges
            .iter()
            .all(|g| !g.name.contains("sampler_stride")));
    }

    #[test]
    fn drop_flushes_retained_samples() {
        let _lock = test_guard();
        start();
        {
            let mut s = Sampler::new("sampler.test.drop", 4);
            s.record(9.0);
        }
        let trace = finish();
        assert!(trace
            .gauges
            .iter()
            .any(|g| g.name == "sampler.test.drop" && g.value == 9.0));
    }
}
