//! Trace exporters: a JSONL event stream and the collapsed-stack text
//! format consumed by `inferno` / `flamegraph.pl`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io::{self, Write};
use std::str::FromStr;

use crate::trace::Trace;

/// The on-disk formats a drained [`Trace`] can be written as
/// (`xring … --trace-format <jsonl|folded>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// One JSON object per line: every span (with parent link, thread,
    /// timing and attached counters), every gauge sample, and a final
    /// `totals` line. Same sink style as the engine's metrics JSONL.
    #[default]
    Jsonl,
    /// Collapsed stacks: one `root;child;leaf <self-time-µs>` line per
    /// distinct frame chain, ready for flamegraph tooling.
    Folded,
}

impl TraceFormat {
    /// The accepted `--trace-format` spellings.
    pub const NAMES: &'static str = "jsonl|folded";
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Folded => "folded",
        })
    }
}

impl FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(TraceFormat::Jsonl),
            "folded" => Ok(TraceFormat::Folded),
            other => Err(format!(
                "unknown trace format '{other}' (expected {})",
                TraceFormat::NAMES
            )),
        }
    }
}

/// Escapes a string for embedding inside a JSON string literal.
///
/// Shared with the engine's metrics sink so every JSONL surface in the
/// workspace escapes identically.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Rewrites a span name into a safe collapsed-stack frame: `;` is the
/// frame separator and whitespace ends the chain in the folded grammar,
/// so both are replaced with `_` (an empty name becomes a single `_`).
///
/// Defensive: span names are `&'static str` phase labels today, but a
/// hostile or careless name must corrupt one frame, not the whole
/// flamegraph line.
pub fn folded_frame(name: &str) -> String {
    if name.is_empty() {
        return "_".to_owned();
    }
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

impl Trace {
    /// Writes the trace in the format selected by `format`.
    pub fn write<W: Write>(&self, format: TraceFormat, w: &mut W) -> io::Result<()> {
        match format {
            TraceFormat::Jsonl => self.write_jsonl(w),
            TraceFormat::Folded => self.write_folded(w),
        }
    }

    /// Writes one JSON object per line: spans in entry order, then
    /// gauge samples, then a final global-totals line.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut spans: Vec<_> = self.spans.iter().collect();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        for s in spans {
            let label = match &s.label {
                Some(label) => format!(r#","label":"{}""#, json_escape(label)),
                None => String::new(),
            };
            let counters = if s.counters.is_empty() {
                String::new()
            } else {
                let body: Vec<String> = s
                    .counters
                    .iter()
                    .map(|(name, value)| format!(r#""{}":{value}"#, json_escape(name)))
                    .collect();
                format!(r#","counters":{{{}}}"#, body.join(","))
            };
            writeln!(
                w,
                r#"{{"type":"span","id":{},"parent":{},"name":"{}"{label},"thread":{},"start_us":{},"dur_us":{}{counters}}}"#,
                s.id,
                s.parent,
                json_escape(s.name),
                s.thread,
                s.start_ns / 1_000,
                s.dur_ns / 1_000,
            )?;
        }
        for g in &self.gauges {
            writeln!(
                w,
                r#"{{"type":"gauge","name":"{}","value":{},"thread":{},"at_us":{}}}"#,
                json_escape(&g.name),
                g.value,
                g.thread,
                g.at_ns / 1_000,
            )?;
        }
        for h in &self.hists {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(le, count)| format!("[{le},{count}]"))
                .collect();
            writeln!(
                w,
                r#"{{"type":"hist","name":"{}","count":{},"sum":{},"max":{},"overflow":{},"p50":{},"p90":{},"p99":{},"buckets":[{}]}}"#,
                json_escape(&h.name),
                h.count,
                h.sum,
                h.max,
                h.overflow,
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                buckets.join(","),
            )?;
        }
        let totals: Vec<String> = self
            .totals
            .iter()
            .map(|(name, value)| format!(r#""{}":{value}"#, json_escape(name)))
            .collect();
        writeln!(
            w,
            r#"{{"type":"totals","counters":{{{}}}}}"#,
            totals.join(",")
        )
    }

    /// Writes collapsed stacks: `frame;frame;frame <self-time-µs>`, one
    /// line per distinct chain, summed across occurrences.
    ///
    /// Self time is a span's inclusive duration minus its recorded
    /// children's inclusive durations (clamped at zero), so the folded
    /// output preserves the trace's total wall time per root.
    pub fn write_folded<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        for s in &self.spans {
            if s.parent != 0 {
                *child_ns.entry(s.parent).or_insert(0) += s.dur_ns;
            }
        }
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            let self_ns = s
                .dur_ns
                .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            let chain = self
                .path(s)
                .iter()
                .map(|frame| folded_frame(frame))
                .collect::<Vec<_>>()
                .join(";");
            *folded.entry(chain).or_insert(0) += self_ns / 1_000;
        }
        for (chain, self_us) in folded {
            writeln!(w, "{chain} {self_us}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{counter, finish, gauge, span, span_labelled, start, test_guard};

    fn sample_trace() -> Trace {
        let _lock = test_guard();
        start();
        {
            let _root = span_labelled("synth", "grid 2x2 \"q\"");
            {
                let _milp = span("ring-milp");
                counter("milp.nodes", 5);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _eval = span("evaluation");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            gauge("queue.wait_us", 7.0);
        }
        finish()
    }

    #[test]
    fn jsonl_lines_are_wellformed_and_complete() {
        let trace = sample_trace();
        let mut out = Vec::new();
        trace.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 3 spans + 1 gauge + totals.
        assert_eq!(lines.len(), 5);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "line: {l}");
            let unescaped = l
                .replace("\\\\", "")
                .replace("\\\"", "")
                .matches('"')
                .count();
            assert_eq!(unescaped % 2, 0, "unbalanced quotes: {l}");
        }
        // Spans sort by start time: the root comes first.
        assert!(lines[0].contains(r#""name":"synth""#));
        assert!(lines[0].contains(r#""label":"grid 2x2 \"q\"""#));
        assert!(lines[1].contains(r#""counters":{"milp.nodes":5}"#));
        assert!(lines[3].contains(r#""type":"gauge""#));
        assert!(lines[4].contains(r#""type":"totals""#));
        assert!(lines[4].contains(r#""milp.nodes":5"#));
    }

    #[test]
    fn folded_output_parses_as_collapsed_stacks() {
        let trace = sample_trace();
        let mut out = Vec::new();
        trace.write_folded(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut chains = Vec::new();
        for line in text.lines() {
            // Collapsed-stack grammar: `frame(;frame)* <count>`.
            let (chain, count) = line.rsplit_once(' ').expect("space-separated count");
            assert!(!chain.is_empty());
            assert!(
                chain.split(';').all(|f| !f.is_empty()),
                "empty frame: {line}"
            );
            count.parse::<u64>().expect("integer sample count");
            chains.push(chain.to_owned());
        }
        assert!(chains.contains(&"synth".to_owned()));
        assert!(chains.contains(&"synth;ring-milp".to_owned()));
        assert!(chains.contains(&"synth;evaluation".to_owned()));
    }

    #[test]
    fn folded_self_time_preserves_root_total() {
        let trace = sample_trace();
        let root_us = trace.find("synth").unwrap().dur_ns / 1_000;
        let mut out = Vec::new();
        trace.write_folded(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let sum: u64 = text
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        // Equal up to one µs of truncation per span.
        assert!(
            sum <= root_us && sum + 3 >= root_us,
            "sum={sum} root={root_us}"
        );
    }

    #[test]
    fn folded_frames_sanitize_hostile_span_names() {
        let _lock = test_guard();
        start();
        {
            let _root = span("synth");
            let _hostile = span("ring;milp v2\tfast");
        }
        let trace = finish();
        let mut out = Vec::new();
        trace.write_folded(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        for line in text.lines() {
            let (chain, count) = line.rsplit_once(' ').expect("space-separated count");
            count.parse::<u64>().expect("integer sample count");
            assert!(
                chain
                    .split(';')
                    .all(|f| !f.is_empty() && !f.contains(char::is_whitespace)),
                "corrupt frame chain: {line}"
            );
        }
        assert!(
            text.contains("synth;ring_milp_v2_fast "),
            "sanitized chain missing:\n{text}"
        );
        assert_eq!(folded_frame(""), "_");
        assert_eq!(folded_frame("a b;c\nd"), "a_b_c_d");
        assert_eq!(folded_frame("ring-milp"), "ring-milp");
    }

    #[test]
    fn jsonl_includes_histogram_lines() {
        let _lock = test_guard();
        start();
        crate::hist::record_hist("export.test.hist_us", 3);
        crate::hist::record_hist("export.test.hist_us", 100);
        let trace = finish();
        let mut out = Vec::new();
        trace.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let hist_line = text
            .lines()
            .find(|l| l.starts_with(r#"{"type":"hist""#))
            .expect("histogram line present");
        assert!(hist_line.contains(r#""name":"export.test.hist_us""#));
        assert!(hist_line.contains(r#""count":2"#));
        assert!(hist_line.contains(r#""sum":103"#));
        assert!(hist_line.contains(r#""buckets":["#));
        // Totals stay last.
        assert!(text.lines().last().unwrap().contains(r#""type":"totals""#));
    }

    #[test]
    fn trace_format_parses_and_displays() {
        assert_eq!("jsonl".parse::<TraceFormat>().unwrap(), TraceFormat::Jsonl);
        assert_eq!(
            "folded".parse::<TraceFormat>().unwrap(),
            TraceFormat::Folded
        );
        assert!("svg".parse::<TraceFormat>().is_err());
        assert_eq!(TraceFormat::Folded.to_string(), "folded");
        assert_eq!(TraceFormat::default(), TraceFormat::Jsonl);
    }
}
