//! The global recorder: span guards, counters, gauges, and the drained
//! [`Trace`] value.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Collection on/off switch. One relaxed load gates every
/// instrumentation call, so the disabled path costs a single atomic
/// read.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonically increasing span ids. Id 0 means "no span" and is used
/// as the parent of root spans.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small per-thread ordinals (1, 2, 3, …) assigned on first use, since
/// `ThreadId` has no stable numeric accessor.
static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(1);

/// The process-wide trace epoch: set on the first [`start`] and never
/// reset, so `start_ns` values are monotone across enable/drain cycles.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The shared record buffers, allocated lazily on first [`start`].
static BUFFERS: OnceLock<Mutex<Buffers>> = OnceLock::new();

#[derive(Default)]
struct Buffers {
    spans: Vec<SpanRecord>,
    gauges: Vec<GaugeRecord>,
    totals: BTreeMap<&'static str, u64>,
}

thread_local! {
    /// The open-span stack of this thread: parent links for new spans
    /// and the attachment point for [`counter`] increments.
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

struct Frame {
    id: u64,
    counters: BTreeMap<&'static str, u64>,
}

/// Locks the buffers, surviving a poisoned mutex: the engine catches
/// worker panics, and a panic between lock and unlock must not disable
/// tracing for every other thread.
fn lock_buffers() -> MutexGuard<'static, Buffers> {
    BUFFERS
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Nanoseconds since the process trace epoch (for records that carry
/// their own capture timestamps, like [`crate::Sampler`] samples).
pub(crate) fn epoch_now_ns() -> u64 {
    now_ns()
}

/// Appends a gauge record with an explicit capture timestamp — the
/// [`crate::Sampler`] flush path, which replays samples retained while
/// recording was enabled.
pub(crate) fn push_gauge_sample(name: &str, value: f64, at_ns: u64) {
    if !enabled() {
        return;
    }
    let record = GaugeRecord {
        name: name.to_owned(),
        value,
        thread: thread_ordinal(),
        at_ns,
    };
    lock_buffers().gauges.push(record);
}

/// Returns `true` while trace collection is enabled.
///
/// Instrumentation sites never need to call this — [`span`],
/// [`counter`] and [`gauge`] check internally — but callers batching
/// expensive label formatting can use it to skip the work entirely.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables trace collection, clearing any previously buffered records.
///
/// Tracing is global to the process; concurrent tests must serialize
/// around [`start`]/[`finish`] (see [`test_guard`]).
pub fn start() {
    EPOCH.get_or_init(Instant::now);
    *lock_buffers() = Buffers::default();
    crate::hist::reset_all();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables collection and drains everything recorded since [`start`].
///
/// Spans still open when `finish` runs are not recorded (a span is
/// written at scope exit); close all guards before draining.
pub fn finish() -> Trace {
    ENABLED.store(false, Ordering::SeqCst);
    let buffers = std::mem::take(&mut *lock_buffers());
    Trace {
        spans: buffers.spans,
        gauges: buffers.gauges,
        totals: buffers
            .totals
            .into_iter()
            .map(|(name, value)| (name.to_owned(), value))
            .collect(),
        hists: crate::hist::snapshot_all(),
    }
}

/// Opens a span named `name`; the returned guard records the exit (and
/// any counters incremented inside) when dropped.
///
/// The span is delivered to the global recorder (when enabled) and to
/// the request attached to this thread (when any — see
/// [`crate::RequestCtx`]). With both off this is two relaxed atomic
/// loads and returns an inert guard.
pub fn span(name: &'static str) -> Span {
    span_inner(name, None)
}

/// Opens a span with a per-instance label (a job name, a wavelength
/// count) alongside the low-cardinality `name`.
///
/// The label appears in the JSONL export only; the folded export keys
/// frames by `name` so flamegraphs aggregate across instances.
pub fn span_labelled(name: &'static str, label: impl Into<String>) -> Span {
    if !capturing() {
        return Span { active: None };
    }
    span_inner(name, Some(label.into()))
}

/// `true` when any sink wants spans: the global recorder or a request
/// attached to this thread. The all-off path is two relaxed loads.
fn capturing() -> bool {
    enabled() || crate::reqctx::attached()
}

fn span_inner(name: &'static str, label: Option<String>) -> Span {
    let sink = crate::reqctx::current_sink();
    if !enabled() && sink.is_none() {
        return Span { active: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().map_or(0, |frame| frame.id);
        stack.push(Frame {
            id,
            counters: BTreeMap::new(),
        });
        parent
    });
    Span {
        active: Some(ActiveSpan {
            id,
            parent,
            name,
            label,
            start_ns: now_ns(),
            start: Instant::now(),
            sink,
        }),
    }
}

/// Adds `delta` to the named counter.
///
/// The increment is attributed to the innermost open span on this
/// thread (visible in that span's JSONL record) and always to the
/// global per-name totals ([`Trace::total`]) — and, when a request is
/// attached to this thread, to that request's totals as well.
pub fn counter(name: &'static str, delta: u64) {
    if delta == 0 || !capturing() {
        return;
    }
    let attached = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        match stack.last_mut() {
            Some(frame) => {
                *frame.counters.entry(name).or_insert(0) += delta;
                true
            }
            None => false,
        }
    });
    if !attached {
        // No open span: the increment cannot ride a frame to the sinks,
        // so feed each interested sink directly.
        if enabled() {
            *lock_buffers().totals.entry(name).or_insert(0) += delta;
        }
        if let Some(sink) = crate::reqctx::current_sink() {
            sink.add_total(name, delta);
        }
    }
}

/// Records an instantaneous sample of the named gauge (a queue wait, a
/// cache occupancy) with a timestamp and the recording thread.
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let record = GaugeRecord {
        name: name.to_owned(),
        value,
        thread: thread_ordinal(),
        at_ns: now_ns(),
    };
    lock_buffers().gauges.push(record);
}

/// An RAII span guard returned by [`span`]; the span's duration runs
/// until the guard is dropped.
#[must_use = "a span records its duration when dropped; binding to `_` drops immediately"]
#[derive(Debug)]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    label: Option<String>,
    start_ns: u64,
    start: Instant,
    /// The request sink attached when the span opened, if any; the
    /// closed span is delivered there in addition to the global buffers.
    sink: Option<std::sync::Arc<crate::reqctx::Sink>>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        // Pop this span's frame even if tracing was disabled mid-span,
        // so the thread-local stack can never hold stale parents.
        let counters = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            match stack.iter().rposition(|frame| frame.id == active.id) {
                Some(pos) => stack.remove(pos).counters,
                None => BTreeMap::new(),
            }
        });
        let globally = ENABLED.load(Ordering::Relaxed);
        if !globally && active.sink.is_none() {
            return;
        }
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            label: active.label,
            thread: thread_ordinal(),
            start_ns: active.start_ns,
            dur_ns,
            counters: counters.iter().map(|(&n, &v)| (n, v)).collect(),
        };
        if let Some(sink) = &active.sink {
            sink.add_totals(&counters);
            if !globally {
                sink.push_span(record); // sole consumer: move, don't clone
                return;
            }
            sink.push_span(record.clone());
        }
        if globally {
            let mut buffers = lock_buffers();
            for (&name, &value) in &counters {
                *buffers.totals.entry(name).or_insert(0) += value;
            }
            buffers.spans.push(record);
        }
    }
}

/// One completed span: timing, ancestry and the counters incremented
/// while it was the innermost open span on its thread.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (monotone in creation order, process-wide).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    /// Low-cardinality span name (a phase: `"ring-milp"`, `"audit"`).
    pub name: &'static str,
    /// Optional per-instance label (a job name); JSONL export only.
    pub label: Option<String>,
    /// Small per-thread ordinal of the recording thread.
    pub thread: u64,
    /// Span entry, in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Inclusive duration in nanoseconds (entry to guard drop).
    pub dur_ns: u64,
    /// Counter increments attributed to this span, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
}

/// One gauge sample.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeRecord {
    /// Gauge name.
    pub name: String,
    /// Sampled value.
    pub value: f64,
    /// Small per-thread ordinal of the recording thread.
    pub thread: u64,
    /// Sample time, in nanoseconds since the process trace epoch.
    pub at_ns: u64,
}

/// A drained trace: everything recorded between [`start`] and
/// [`finish`], ready for inspection or export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Completed spans, in completion (guard drop) order.
    pub spans: Vec<SpanRecord>,
    /// Gauge samples, in recording order.
    pub gauges: Vec<GaugeRecord>,
    /// Global counter totals, sorted by name — the sum of every
    /// [`counter`] increment regardless of the span it attached to.
    pub totals: Vec<(String, u64)>,
    /// Snapshots of every registered histogram with at least one
    /// sample, sorted by name (see [`crate::record_hist`]).
    pub hists: Vec<crate::hist::HistogramSnapshot>,
}

impl Trace {
    /// The first recorded span with this name, if any.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The snapshot of the named histogram, if it recorded any sample.
    pub fn hist(&self, name: &str) -> Option<&crate::hist::HistogramSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// The global total for a counter name (0 if never incremented).
    pub fn total(&self, name: &str) -> u64 {
        self.totals
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Sum of inclusive durations of every span with this name, in
    /// nanoseconds. The per-phase aggregate behind `EXPERIMENTS.md`'s
    /// phase-share table.
    pub fn inclusive_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// All direct children of the span with id `id`, in completion
    /// order.
    pub fn children(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == id).collect()
    }

    /// The root-to-span name path (the folded-stack frame chain).
    /// Spans whose parent was never recorded are treated as roots.
    pub fn path(&self, span: &SpanRecord) -> Vec<&'static str> {
        let mut path = vec![span.name];
        let mut parent = span.parent;
        while parent != 0 {
            match self.spans.iter().find(|s| s.id == parent) {
                Some(p) => {
                    path.push(p.name);
                    parent = p.parent;
                }
                None => break,
            }
        }
        path.reverse();
        path
    }
}

/// Serializes tests (and any other concurrent users) that enable the
/// global trace: hold the returned guard across `start()` … `finish()`.
///
/// The underlying lock ignores poisoning so one failed test cannot
/// cascade.
pub fn test_guard() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_records_nothing() {
        let _lock = test_guard();
        // Not started: guards are inert and counters are dropped.
        assert!(!enabled());
        {
            let _s = span("phantom");
            counter("phantom.count", 7);
            gauge("phantom.gauge", 1.0);
        }
        start();
        let trace = finish();
        assert!(trace.spans.is_empty());
        assert!(trace.gauges.is_empty());
        assert!(trace.totals.is_empty());
    }

    #[test]
    fn nesting_records_parent_links_and_ordering() {
        let _lock = test_guard();
        start();
        {
            let _a = span("a");
            {
                let _b = span_labelled("b", "first");
                let _c = span("c");
            }
            let _d = span("d");
        }
        let trace = finish();
        // Completion order: innermost first.
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["c", "b", "d", "a"]);
        let a = trace.find("a").unwrap();
        let b = trace.find("b").unwrap();
        let c = trace.find("c").unwrap();
        let d = trace.find("d").unwrap();
        assert_eq!(a.parent, 0);
        assert_eq!(b.parent, a.id);
        assert_eq!(c.parent, b.id);
        assert_eq!(d.parent, a.id);
        assert_eq!(b.label.as_deref(), Some("first"));
        assert_eq!(trace.path(c), ["a", "b", "c"]);
        // Parents start no later and end no earlier than children.
        assert!(a.start_ns <= b.start_ns);
        assert!(a.start_ns + a.dur_ns >= b.start_ns + b.dur_ns);
        assert!(b.start_ns + b.dur_ns >= c.start_ns + c.dur_ns);
        assert_eq!(trace.children(a.id).len(), 2);
    }

    #[test]
    fn counters_attach_to_innermost_span_and_sum_globally() {
        let _lock = test_guard();
        start();
        {
            let _outer = span("outer");
            counter("n", 1);
            {
                let _inner = span("inner");
                counter("n", 10);
                counter("n", 10);
                counter("m", 3);
            }
            counter("n", 100);
        }
        counter("n", 1000); // no open span: totals only
        let trace = finish();
        let outer = trace.find("outer").unwrap();
        let inner = trace.find("inner").unwrap();
        assert_eq!(outer.counters, vec![("n", 101)]);
        assert_eq!(inner.counters, vec![("m", 3), ("n", 20)]);
        assert_eq!(trace.total("n"), 1121);
        assert_eq!(trace.total("m"), 3);
        assert_eq!(trace.total("absent"), 0);
    }

    #[test]
    fn spans_open_across_finish_are_dropped_cleanly() {
        let _lock = test_guard();
        start();
        let open = span("open");
        let trace = finish();
        assert!(trace.spans.is_empty());
        drop(open); // must not panic or corrupt the thread stack
        start();
        {
            let _s = span("after");
        }
        let trace = finish();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].parent, 0, "stale frame must not linger");
    }

    #[test]
    fn threads_get_distinct_ordinals_and_independent_stacks() {
        let _lock = test_guard();
        start();
        let main_thread = {
            let _s = span("main-side");
            thread_ordinal()
        };
        let handle = std::thread::spawn(|| {
            let _s = span("worker-side");
            thread_ordinal()
        });
        let worker_thread = handle.join().unwrap();
        let trace = finish();
        assert_ne!(main_thread, worker_thread);
        let worker = trace.find("worker-side").unwrap();
        assert_eq!(worker.parent, 0, "stacks are per-thread");
        assert_eq!(worker.thread, worker_thread);
        assert_eq!(trace.find("main-side").unwrap().thread, main_thread);
    }

    #[test]
    fn start_resets_previous_buffers() {
        let _lock = test_guard();
        start();
        {
            let _s = span("stale");
        }
        start(); // re-arm without draining
        {
            let _s = span("fresh");
        }
        let trace = finish();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "fresh");
    }

    #[test]
    fn gauges_record_value_and_time() {
        let _lock = test_guard();
        start();
        gauge("queue.wait_us", 12.5);
        gauge("queue.wait_us", 3.0);
        let trace = finish();
        assert_eq!(trace.gauges.len(), 2);
        assert_eq!(trace.gauges[0].value, 12.5);
        assert!(trace.gauges[0].at_ns <= trace.gauges[1].at_ns);
    }
}
