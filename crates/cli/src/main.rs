//! `xring` — the command-line front end.
//!
//! ```text
//! xring synth --grid 4x4 --pitch 2000 --wl 14 --svg layout.svg
//! xring table 2
//! xring ablation ring
//! ```

mod args;

use args::{parse, Command, SynthArgs, USAGE};
use std::process::ExitCode;
use xring_bench::tables::{
    ablation_pdn, ablation_ring, ablation_shortcuts, print_sections, table1, table2, table3,
};
use xring_core::{NetworkSpec, RingAlgorithm, SynthesisOptions, Synthesizer};
use xring_phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};
use xring_viz::{render_design, RenderOptions};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Table(which)) => run_table(which),
        Ok(Command::Ablation(which)) => run_ablation(&which),
        Ok(Command::Synth(args)) => run_synth(&args),
        Ok(Command::Sweep(args, objective)) => run_sweep(&args, &objective),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_table(which: u8) -> ExitCode {
    let result = match which {
        1 => table1(),
        2 => table2(),
        _ => table3(),
    };
    match result {
        Ok(sections) => {
            print_sections(&sections);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_ablation(which: &str) -> ExitCode {
    let runs: Vec<fn() -> _> = match which {
        "shortcuts" => vec![ablation_shortcuts],
        "pdn" => vec![ablation_pdn],
        "ring" => vec![ablation_ring],
        _ => vec![ablation_shortcuts, ablation_pdn, ablation_ring],
    };
    for run in runs {
        match run() {
            Ok(sections) => print_sections(&sections),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn network_of(args: &SynthArgs) -> Result<NetworkSpec, xring_core::SynthesisError> {
    match args.irregular {
        Some((n, seed, die)) => NetworkSpec::irregular(n, die, seed),
        None => NetworkSpec::regular_grid(args.rows, args.cols, args.pitch_um),
    }
}

fn options_of(args: &SynthArgs) -> SynthesisOptions {
    let ring_algorithm = match args.ring.as_str() {
        "heuristic" => RingAlgorithm::Heuristic,
        "perimeter" => RingAlgorithm::Perimeter,
        _ => RingAlgorithm::Milp,
    };
    SynthesisOptions {
        ring_algorithm,
        shortcuts: !args.no_shortcuts,
        openings: !args.no_openings,
        pdn: !args.no_pdn,
        ..SynthesisOptions::with_wavelengths(args.wavelengths)
    }
}

fn run_sweep(args: &SynthArgs, objective: &str) -> ExitCode {
    use xring_core::{sweep_wavelengths, SweepObjective};
    let net = match network_of(args) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let obj = match objective {
        "il" => SweepObjective::MinInsertionLoss,
        "snr" => SweepObjective::MaxSnr,
        _ => SweepObjective::MinPower,
    };
    let candidates: Vec<usize> = (1..=args.wavelengths.max(2))
        .filter(|w| w.is_power_of_two() || *w == args.wavelengths)
        .collect();
    let result = match sweep_wavelengths(
        &net,
        options_of(args),
        &candidates,
        obj,
        &LossParams::default(),
        Some(&CrosstalkParams::default()),
        &PowerParams::default(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", RouterReport::table_header());
    for (i, p) in result.points.iter().enumerate() {
        let marker = if i == result.best { "  <= best" } else { "" };
        println!("{}{marker}", p.report);
    }
    ExitCode::SUCCESS
}

fn run_synth(args: &SynthArgs) -> ExitCode {
    let net = match network_of(args) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let options = options_of(args);
    let design = match Synthesizer::new(options).synthesize(&net) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "synthesized {} nodes: ring {:.1} mm, {} shortcuts, {} ring waveguides, {} openings",
        net.len(),
        design.cycle.perimeter() as f64 / 1_000.0,
        design.shortcuts.shortcuts.len(),
        design.plan.ring_waveguides.len(),
        design.opening_stats.opened,
    );
    let report = design.report(
        "synth",
        &LossParams::default(),
        Some(&CrosstalkParams::default()),
        &PowerParams::default(),
    );
    println!("{}", RouterReport::table_header());
    println!("{report}");

    if args.describe {
        println!("\n{}", design.describe());
    }
    if let Some(path) = &args.svg {
        let svg = render_design(&design, &RenderOptions::default());
        if let Err(e) = std::fs::write(path, svg) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("layout written to {path}");
    }
    ExitCode::SUCCESS
}
