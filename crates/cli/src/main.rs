//! `xring` — the command-line front end.
//!
//! ```text
//! xring synth --grid 4x4 --pitch 2000 --wl 14 --svg layout.svg
//! xring --jobs 4 table 2
//! xring batch --grid 4x4 --wl-list 4,8,14 --repeat 2 --metrics-jsonl events.jsonl
//! ```

mod args;

use args::{parse, BatchArgs, Command, ServeArgs, SynthArgs, USAGE};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use xring_bench::tables::{
    ablation_pdn, ablation_ring, ablation_shortcuts, print_sections, table1, table2, table3,
};
use xring_core::{
    DegradationLevel, DegradationPolicy, NetworkSpec, RingAlgorithm, SpareConfig, SynthesisOptions,
    Synthesizer, Traffic,
};
use xring_engine::{Engine, JsonlSink, SynthesisJob};
use xring_phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};
use xring_viz::{render_design, RenderOptions};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&argv) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Structured logging first: everything after this point may emit
    // leveled JSONL events ([`xring_obs::log`]) instead of bare stderr.
    if let Some(level) = cli.log_level {
        xring_obs::log::set_level(level);
    }
    if let Some(path) = &cli.log_out {
        match std::fs::File::create(path) {
            Ok(file) => xring_obs::log::set_output(Some(Box::new(file))),
            Err(e) => {
                eprintln!("error: cannot open log file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut engine = Engine::new();
    if let Some(jobs) = cli.jobs {
        engine = engine.with_workers(jobs);
    }
    // `--trace` and `--metrics-out` wrap the whole command: spans and
    // histograms from every layer (engine jobs, synthesis phases, MILP
    // solves) land in one trace, drained once after the command finishes
    // and rendered to each requested output.
    let (trace_to, solver_log, metrics_out) = match &cli.command {
        Command::Synth(a)
        | Command::Sweep(a, _)
        | Command::FaultSweep(a, _)
        | Command::Edit(a, _) => (
            a.trace.clone().map(|p| (p, a.trace_format)),
            a.solver_log.clone(),
            a.metrics_out.clone(),
        ),
        Command::Batch(b) => (
            b.synth.trace.clone().map(|p| (p, b.synth.trace_format)),
            b.synth.solver_log.clone(),
            b.synth.metrics_out.clone(),
        ),
        Command::Serve(a) => (
            a.trace.clone().map(|p| (p, a.trace_format)),
            None,
            a.metrics_out.clone(),
        ),
        _ => (None, None, None),
    };
    if trace_to.is_some() || metrics_out.is_some() {
        xring_obs::start();
    }
    // `--solver-log` installs a global convergence sink; every MILP solve
    // during the command streams its events there, tagged by solve id.
    let solver_sink_installed = match &solver_log {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => {
                xring_milp::progress::install_sink(Arc::new(
                    xring_milp::progress::JsonlProgressSink::new(file),
                ));
                true
            }
            Err(e) => {
                xring_obs::log::error(
                    "cli",
                    "cannot write solver log",
                    &[("path", path), ("error", &e.to_string())],
                );
                return ExitCode::FAILURE;
            }
        },
        None => false,
    };
    let code = match cli.command {
        Command::Help => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Command::Table(which) => run_table(which, &engine),
        Command::Ablation(which) => run_ablation(&which, &engine),
        Command::Synth(args) => run_synth(&args),
        Command::Sweep(args, objective) => run_sweep(&args, &objective, &engine),
        Command::Batch(args) => run_batch_cmd(&args, engine),
        Command::FaultSweep(args, levels) => run_fault_sweep(&args, &levels, &engine),
        Command::Edit(args, drop_pair) => run_edit(&args, drop_pair, &engine),
        Command::Serve(args) => run_serve(&args),
    };
    if solver_sink_installed {
        xring_milp::progress::clear_sink();
        if let Some(path) = &solver_log {
            xring_obs::log::info("cli", "solver convergence log written", &[("path", path)]);
        }
    }
    if trace_to.is_some() || metrics_out.is_some() {
        let trace = xring_obs::finish();
        if let Some((path, format)) = trace_to {
            if let Err(e) = write_trace(&trace, &path, format) {
                xring_obs::log::error(
                    "cli",
                    "cannot write trace",
                    &[("path", &path), ("error", &e.to_string())],
                );
                return ExitCode::FAILURE;
            }
            xring_obs::log::info(
                "cli",
                "trace written",
                &[("path", &path), ("format", &format.to_string())],
            );
        }
        if let Some(path) = metrics_out {
            if let Err(e) = write_metrics(&trace, &path) {
                xring_obs::log::error(
                    "cli",
                    "cannot write metrics",
                    &[("path", &path), ("error", &e.to_string())],
                );
                return ExitCode::FAILURE;
            }
            xring_obs::log::info("cli", "prometheus metrics written", &[("path", &path)]);
        }
    }
    code
}

fn write_trace(
    trace: &xring_obs::Trace,
    path: &str,
    format: xring_obs::TraceFormat,
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    trace.write(format, &mut file)
}

fn write_metrics(trace: &xring_obs::Trace, path: &str) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    trace.write_prometheus(&mut file)
}

fn run_table(which: u8, engine: &Engine) -> ExitCode {
    let result = match which {
        1 => table1(engine),
        2 => table2(engine),
        _ => table3(engine),
    };
    match result {
        Ok(sections) => {
            print_sections(&sections);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_ablation(which: &str, engine: &Engine) -> ExitCode {
    type Ablation =
        fn(&Engine) -> Result<Vec<(String, Vec<RouterReport>)>, xring_core::SynthesisError>;
    let runs: Vec<Ablation> = match which {
        "shortcuts" => vec![ablation_shortcuts],
        "pdn" => vec![ablation_pdn],
        "ring" => vec![ablation_ring],
        _ => vec![ablation_shortcuts, ablation_pdn, ablation_ring],
    };
    for run in runs {
        match run(engine) {
            Ok(sections) => print_sections(&sections),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if engine.cache().hits() > 0 {
        println!(
            "engine cache: {} hits, {} misses",
            engine.cache().hits(),
            engine.cache().misses()
        );
    }
    ExitCode::SUCCESS
}

fn network_of(args: &SynthArgs) -> Result<NetworkSpec, xring_core::SynthesisError> {
    match args.irregular {
        Some((n, seed, die)) => NetworkSpec::irregular(n, die, seed),
        None => NetworkSpec::regular_grid(args.rows, args.cols, args.pitch_um),
    }
}

fn options_of(args: &SynthArgs) -> SynthesisOptions {
    let ring_algorithm = match args.ring.as_str() {
        "heuristic" => RingAlgorithm::Heuristic,
        "perimeter" => RingAlgorithm::Perimeter,
        _ => RingAlgorithm::Milp,
    };
    // The parser validated the policy and backend strings already.
    let degradation = args
        .degradation
        .parse::<DegradationPolicy>()
        .unwrap_or_default();
    let lp_backend = args
        .lp_backend
        .parse::<xring_core::LpBackendKind>()
        .unwrap_or_default();
    let pricing = args
        .pricing
        .parse::<xring_core::PricingKind>()
        .unwrap_or_default();
    let factorization = args
        .factorization
        .parse::<xring_core::FactorizationKind>()
        .unwrap_or_default();
    SynthesisOptions {
        ring_algorithm,
        degradation,
        lp_backend,
        solver_threads: args.solver_threads,
        pricing,
        factorization,
        shortcuts: !args.no_shortcuts,
        openings: !args.no_openings,
        pdn: !args.no_pdn,
        spares: SpareConfig::uniform(args.spares),
        ..SynthesisOptions::with_wavelengths(args.wavelengths)
    }
}

/// The sweep's default candidate ladder: the powers of two up to `--wl`,
/// plus `--wl` itself.
fn wl_ladder(max: usize) -> Vec<usize> {
    (1..=max.max(2))
        .filter(|w| w.is_power_of_two() || *w == max)
        .collect()
}

fn run_sweep(args: &SynthArgs, objective: &str, engine: &Engine) -> ExitCode {
    use xring_core::SweepObjective;
    let net = match network_of(args) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let obj = match objective {
        "il" => SweepObjective::MinInsertionLoss,
        "snr" => SweepObjective::MaxSnr,
        _ => SweepObjective::MinPower,
    };
    let candidates = wl_ladder(args.wavelengths);
    let result = match engine.sweep_wavelengths(
        &net,
        options_of(args),
        &candidates,
        obj,
        &LossParams::default(),
        Some(&CrosstalkParams::default()),
        &PowerParams::default(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", RouterReport::table_header());
    for (i, p) in result.points.iter().enumerate() {
        let marker = if i == result.best { "  <= best" } else { "" };
        println!("{}{marker}", p.report);
    }
    ExitCode::SUCCESS
}

fn run_batch_cmd(args: &BatchArgs, mut engine: Engine) -> ExitCode {
    let net = match network_of(&args.synth) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.metrics_jsonl {
        match std::fs::File::create(path) {
            Ok(file) => engine = engine.with_sink(Arc::new(JsonlSink::new(file))),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let candidates = if args.wl_list.is_empty() {
        wl_ladder(args.synth.wavelengths)
    } else {
        args.wl_list.clone()
    };
    let base = options_of(&args.synth);
    let mut jobs = Vec::with_capacity(candidates.len() * args.repeat);
    for round in 0..args.repeat {
        for &wl in &candidates {
            let mut job = SynthesisJob::new(
                format!("r{round} #wl={wl}"),
                net.clone(),
                SynthesisOptions {
                    max_wavelengths: wl,
                    ..base.clone()
                },
            );
            if let Some(ms) = args.deadline_ms {
                job = job.with_deadline(Duration::from_millis(ms));
            }
            jobs.push(job);
        }
    }

    let batch = engine.run_batch(jobs);
    println!("{}", RouterReport::table_header());
    let mut failed = false;
    for outcome in &batch.outcomes {
        match outcome {
            Ok(out) => {
                let hit = if out.cache_hit { "  [cache]" } else { "" };
                let degraded = match out.design.provenance.degradation {
                    DegradationLevel::Exact => "",
                    DegradationLevel::RetriedPerturbed => "  [retried]",
                    DegradationLevel::Heuristic => "  [heuristic]",
                };
                println!("{}{hit}{degraded}", out.report);
            }
            Err(e) => {
                failed = true;
                eprintln!("job failed: {e}");
            }
        }
    }
    println!("batch: {}", batch.metrics.summary());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_fault_sweep(args: &SynthArgs, levels: &[usize], engine: &Engine) -> ExitCode {
    let net = match network_of(args) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spare_levels: Vec<SpareConfig> = levels.iter().map(|&k| SpareConfig::uniform(k)).collect();
    let result = match engine.fault_sweep(
        &net,
        &options_of(args),
        &spare_levels,
        Some(&CrosstalkParams::default()),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<22} {:>4} {:>3} {:>9} {:>9} {:>7} {:>11} {:>13} {:>8}",
        "level",
        "#wl",
        "wg",
        "power mW",
        "survived",
        "margin",
        "min-served",
        "worst SNR dB",
        "wall ms"
    );
    for p in &result.points {
        let marker = if p.pareto { "  <= pareto" } else { "" };
        println!(
            "{:<22} {:>4} {:>3} {:>9} {:>4}/{:<4} {:>7.3} {:>11.3} {:>13} {:>8.1}{marker}",
            p.label,
            p.wavelengths,
            p.waveguides,
            p.total_power_w
                .map_or("n/a".into(), |w| format!("{:.2}", w * 1e3)),
            p.survived,
            p.scenarios,
            p.fault_margin,
            p.min_served_fraction,
            p.worst_post_snr_db
                .map_or("n/a".into(), |s| format!("{s:.1}")),
            p.wall.as_secs_f64() * 1e3,
        );
    }
    for p in &result.points {
        if let Some(worst) = &p.worst {
            println!("{}: worst scenario: {worst}", p.label);
        }
    }
    ExitCode::SUCCESS
}

/// `xring edit`: the incremental re-synthesis demo loop. Synthesizes
/// the base spec cold (seeding the engine's phase-artifact store),
/// drops one traffic demand, re-synthesizes the edited spec
/// incrementally, and compares it against a cold synthesis of the same
/// edited spec on a fresh engine.
fn run_edit(args: &SynthArgs, drop_pair: usize, engine: &Engine) -> ExitCode {
    let net = match network_of(args) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let options = options_of(args);
    let pairs = options.traffic.pairs(&net);
    if drop_pair >= pairs.len() {
        eprintln!(
            "error: --drop-pair {drop_pair} out of range ({} demand pairs)",
            pairs.len()
        );
        return ExitCode::FAILURE;
    }
    let mut edited_pairs = pairs.clone();
    let (src, dst) = edited_pairs.remove(drop_pair);
    let mut edited_options = options.clone();
    edited_options.traffic = Traffic::Custom(edited_pairs);

    let base = SynthesisJob::new("base", net.clone(), options);
    let edited = SynthesisJob::new("edited", net.clone(), edited_options);

    // Cold run of the base spec: populates the phase-artifact store.
    let cold_base = match engine.resynthesize(&base, &base) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: base synthesis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Cold reference for the *edited* spec, on a fresh engine whose
    // cache holds nothing — what a non-incremental tool would pay.
    let cold_edit = match Engine::new().with_workers(1).resynthesize(&edited, &edited) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: cold reference synthesis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The edit: diffed against the base, replaying clean phases.
    let incremental = match engine.resynthesize(&base, &edited) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: incremental re-synthesis failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cold_ms = cold_edit.wall.as_secs_f64() * 1e3;
    let inc_ms = incremental.wall.as_secs_f64() * 1e3;
    let identical = incremental.design.describe() == cold_edit.design.describe();
    println!(
        "edit: dropped demand {src}->{dst} (pair {drop_pair} of {})",
        pairs.len()
    );
    println!(
        "cold synthesis (base spec):    {:>9.1} ms",
        cold_base.wall.as_secs_f64() * 1e3
    );
    println!("cold synthesis (edited spec):  {cold_ms:>9.1} ms");
    println!(
        "incremental re-synthesis:      {inc_ms:>9.1} ms   ({:.1}x, {}/5 phases replayed)",
        if inc_ms > 0.0 {
            cold_ms / inc_ms
        } else {
            f64::INFINITY
        },
        incremental.phases_reused,
    );
    println!(
        "byte-identical to cold synthesis of the edited spec: {}",
        if identical { "yes" } else { "no" }
    );
    println!("{}", RouterReport::table_header());
    println!("{}", incremental.report);
    ExitCode::SUCCESS
}

fn run_serve(args: &ServeArgs) -> ExitCode {
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicBool, Ordering};

    // The parser validated the policy string already.
    let degradation = args
        .degradation
        .parse::<DegradationPolicy>()
        .unwrap_or_default();
    let mut slo = xring_serve::SloConfig::default();
    if let Some(ppm) = args.slo_target_ppm {
        slo.target_ppm = ppm;
    }
    if let Some(ms) = args.slo_latency_ms {
        slo.latency_target = Duration::from_millis(ms);
    }
    let config = xring_serve::ServeConfig {
        port: args.port,
        workers: args.workers,
        max_inflight: args.max_inflight,
        queue_depth: args.queue_depth,
        deadline: args.deadline_ms.map(Duration::from_millis),
        degradation,
        cache_bytes: match args.cache_bytes {
            0 => None,
            n => Some(n as usize),
        },
        slo,
        postmortem: args.postmortem.clone().map(std::path::PathBuf::from),
        ..xring_serve::ServeConfig::default()
    };
    let mut server = match xring_serve::Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            xring_obs::log::error("cli", "cannot start daemon", &[("error", &e.to_string())]);
            return ExitCode::FAILURE;
        }
    };
    // Supervisors (ci.sh among them) parse this line for the resolved
    // port, so print and flush it before anything else.
    println!("xring serve listening on {}", server.addr());
    std::io::stdout().flush().ok();

    // Two ways to stop: POST /shutdown over the wire, or closing the
    // daemon's stdin (the supervisor-friendly path — no signal handling
    // in a std-only workspace). Run detached with stdin held open.
    let stdin_closed = Arc::new(AtomicBool::new(false));
    {
        let stdin_closed = Arc::clone(&stdin_closed);
        let watcher = std::thread::Builder::new()
            .name("serve-stdin".to_owned())
            .spawn(move || {
                let mut sink = [0u8; 256];
                let mut stdin = std::io::stdin();
                while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
                stdin_closed.store(true, Ordering::Release);
            });
        if watcher.is_err() {
            xring_obs::log::warn("cli", "no stdin watcher; stop with POST /shutdown", &[]);
        }
    }
    while !server.is_draining() && !stdin_closed.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
    let m = server.metrics();
    xring_obs::log::info(
        "cli",
        &format!(
            "drained after {} requests ({} ok, {} shed, {} degraded); cache {} hits / {} misses",
            m.requests(),
            m.ok(),
            m.shed(),
            m.degraded(),
            server.cache().hits(),
            server.cache().misses(),
        ),
        &[],
    );
    ExitCode::SUCCESS
    // If the watcher thread is still parked in read(), the process exit
    // right after main returns reaps it.
}

fn run_synth(args: &SynthArgs) -> ExitCode {
    let net = match network_of(args) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let options = options_of(args);
    let design = match Synthesizer::new(options).synthesize(&net) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "synthesized {} nodes: ring {:.1} mm, {} shortcuts, {} ring waveguides, {} openings",
        net.len(),
        design.cycle.perimeter() as f64 / 1_000.0,
        design.shortcuts.shortcuts.len(),
        design.plan.ring_waveguides.len(),
        design.opening_stats.opened,
    );
    if design.provenance.degradation != DegradationLevel::Exact {
        println!(
            "degraded: {} ({})",
            design.provenance.degradation.as_str(),
            design
                .provenance
                .fallback_reason
                .as_deref()
                .unwrap_or("no reason recorded"),
        );
    }
    if let Some(conv) = &design.ring_stats.convergence {
        println!(
            "ring MILP convergence: {} nodes, {} incumbents, final gap {}, first incumbent {}",
            conv.nodes,
            conv.incumbent_events,
            conv.final_gap
                .map_or("n/a".into(), |g| format!("{:.4}%", g * 100.0)),
            conv.time_to_first_incumbent
                .map_or("n/a".into(), |t| format!("{:.1} ms", t.as_secs_f64() * 1e3)),
        );
    }
    let report = design.report(
        "synth",
        &LossParams::default(),
        Some(&CrosstalkParams::default()),
        &PowerParams::default(),
    );
    println!("{}", RouterReport::table_header());
    println!("{report}");

    if args.describe {
        println!("\n{}", design.describe());
    }
    if let Some(path) = &args.svg {
        let svg = render_design(&design, &RenderOptions::default());
        if let Err(e) = std::fs::write(path, svg) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("layout written to {path}");
    }
    ExitCode::SUCCESS
}
