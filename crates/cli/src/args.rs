//! A small, dependency-free argument parser for the `xring` CLI.

use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `xring synth ...`
    Synth(SynthArgs),
    /// `xring sweep ...` — like synth but sweeping `#wl` and printing
    /// every point. The objective is "il", "power" or "snr".
    Sweep(SynthArgs, String),
    /// `xring table <1|2|3>`
    Table(u8),
    /// `xring ablation <shortcuts|pdn|ring|all>`
    Ablation(String),
    /// `xring help` / `--help`
    Help,
}

/// Options of the `synth` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthArgs {
    /// Grid rows (with [`SynthArgs::cols`]); mutually exclusive with
    /// `irregular`.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Grid pitch in µm.
    pub pitch_um: i64,
    /// Irregular placement: `(node count, seed, die µm)`.
    pub irregular: Option<(usize, u64, i64)>,
    /// `#wl` cap.
    pub wavelengths: usize,
    /// Ring algorithm: "milp" | "heuristic" | "perimeter".
    pub ring: String,
    /// Disable Step 2.
    pub no_shortcuts: bool,
    /// Disable openings.
    pub no_openings: bool,
    /// Disable Step 4.
    pub no_pdn: bool,
    /// Write an SVG rendering here.
    pub svg: Option<String>,
    /// Print the full design document.
    pub describe: bool,
}

impl Default for SynthArgs {
    fn default() -> Self {
        SynthArgs {
            rows: 4,
            cols: 4,
            pitch_um: 2_000,
            irregular: None,
            wavelengths: 16,
            ring: "milp".into(),
            no_shortcuts: false,
            no_openings: false,
            no_pdn: false,
            svg: None,
            describe: false,
        }
    }
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

/// The usage text.
pub const USAGE: &str = "\
xring — crosstalk-aware synthesis of optical ring routers (DATE 2023 reproduction)

USAGE:
  xring synth [--grid RxC] [--pitch UM] [--irregular N,SEED,DIE_UM]
              [--wl N] [--ring milp|heuristic|perimeter]
              [--no-shortcuts] [--no-openings] [--no-pdn] [--svg FILE]
              [--describe]
  xring sweep [synth flags] [--objective il|power|snr]
  xring table <1|2|3>
  xring ablation <shortcuts|pdn|ring|all>
  xring help
";

/// Parses a full argument vector (excluding argv\[0\]).
///
/// # Errors
///
/// Returns a message describing the first malformed argument.
pub fn parse(args: &[String]) -> Result<Command, ParseArgsError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "table" => {
            let which = it
                .next()
                .ok_or_else(|| ParseArgsError("table needs a number (1, 2 or 3)".into()))?;
            match which.as_str() {
                "1" => Ok(Command::Table(1)),
                "2" => Ok(Command::Table(2)),
                "3" => Ok(Command::Table(3)),
                other => Err(ParseArgsError(format!("unknown table {other}"))),
            }
        }
        "ablation" => {
            let which = it.next().map(String::as_str).unwrap_or("all");
            if ["shortcuts", "pdn", "ring", "all"].contains(&which) {
                Ok(Command::Ablation(which.to_string()))
            } else {
                Err(ParseArgsError(format!("unknown ablation {which}")))
            }
        }
        cmd @ ("synth" | "sweep") => {
            let is_sweep = cmd == "sweep";
            let mut objective = "power".to_string();
            let mut out = SynthArgs::default();
            while let Some(flag) = it.next() {
                if flag == "--objective" {
                    if !is_sweep {
                        return Err(ParseArgsError(
                            "--objective only applies to the sweep command".into(),
                        ));
                    }
                    let v = it
                        .next()
                        .ok_or_else(|| ParseArgsError("--objective needs il|power|snr".into()))?;
                    if !["il", "power", "snr"].contains(&v.as_str()) {
                        return Err(ParseArgsError(format!("unknown objective {v}")));
                    }
                    objective = v.clone();
                    continue;
                }
                match flag.as_str() {
                    "--grid" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--grid needs RxC".into()))?;
                        let (r, c) = v
                            .split_once(['x', 'X'])
                            .ok_or_else(|| ParseArgsError(format!("bad grid {v}")))?;
                        out.rows = r
                            .parse()
                            .map_err(|_| ParseArgsError(format!("bad rows {r}")))?;
                        out.cols = c
                            .parse()
                            .map_err(|_| ParseArgsError(format!("bad cols {c}")))?;
                    }
                    "--pitch" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--pitch needs µm".into()))?;
                        out.pitch_um = v
                            .parse()
                            .map_err(|_| ParseArgsError(format!("bad pitch {v}")))?;
                    }
                    "--irregular" => {
                        let v = it.next().ok_or_else(|| {
                            ParseArgsError("--irregular needs N,SEED,DIE_UM".into())
                        })?;
                        let parts: Vec<&str> = v.split(',').collect();
                        if parts.len() != 3 {
                            return Err(ParseArgsError(format!("bad irregular spec {v}")));
                        }
                        let n = parts[0]
                            .parse()
                            .map_err(|_| ParseArgsError(format!("bad N {}", parts[0])))?;
                        let seed = parts[1]
                            .parse()
                            .map_err(|_| ParseArgsError(format!("bad seed {}", parts[1])))?;
                        let die = parts[2]
                            .parse()
                            .map_err(|_| ParseArgsError(format!("bad die {}", parts[2])))?;
                        out.irregular = Some((n, seed, die));
                    }
                    "--wl" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--wl needs a count".into()))?;
                        out.wavelengths = v
                            .parse()
                            .map_err(|_| ParseArgsError(format!("bad #wl {v}")))?;
                        if out.wavelengths == 0 {
                            return Err(ParseArgsError("#wl must be at least 1".into()));
                        }
                    }
                    "--ring" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--ring needs an algorithm".into()))?;
                        if !["milp", "heuristic", "perimeter"].contains(&v.as_str()) {
                            return Err(ParseArgsError(format!("unknown ring algorithm {v}")));
                        }
                        out.ring = v.clone();
                    }
                    "--describe" => out.describe = true,
                    "--no-shortcuts" => out.no_shortcuts = true,
                    "--no-openings" => out.no_openings = true,
                    "--no-pdn" => out.no_pdn = true,
                    "--svg" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--svg needs a path".into()))?;
                        out.svg = Some(v.clone());
                    }
                    other => return Err(ParseArgsError(format!("unknown flag {other}"))),
                }
            }
            if is_sweep {
                Ok(Command::Sweep(out, objective))
            } else {
                Ok(Command::Synth(out))
            }
        }
        other => Err(ParseArgsError(format!("unknown command {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&v(&["--help"])), Ok(Command::Help));
    }

    #[test]
    fn table_parsing() {
        assert_eq!(parse(&v(&["table", "2"])), Ok(Command::Table(2)));
        assert!(parse(&v(&["table", "9"])).is_err());
        assert!(parse(&v(&["table"])).is_err());
    }

    #[test]
    fn ablation_defaults_to_all() {
        assert_eq!(
            parse(&v(&["ablation"])),
            Ok(Command::Ablation("all".into()))
        );
        assert!(parse(&v(&["ablation", "bogus"])).is_err());
    }

    #[test]
    fn synth_full_flags() {
        let cmd = parse(&v(&[
            "synth",
            "--grid",
            "4x8",
            "--pitch",
            "2500",
            "--wl",
            "20",
            "--ring",
            "heuristic",
            "--no-pdn",
            "--svg",
            "out.svg",
        ]))
        .expect("parses");
        let Command::Synth(a) = cmd else { panic!("not synth") };
        assert_eq!((a.rows, a.cols, a.pitch_um), (4, 8, 2_500));
        assert_eq!(a.wavelengths, 20);
        assert_eq!(a.ring, "heuristic");
        assert!(a.no_pdn && !a.no_shortcuts && !a.no_openings);
        assert_eq!(a.svg.as_deref(), Some("out.svg"));
    }

    #[test]
    fn synth_irregular() {
        let cmd = parse(&v(&["synth", "--irregular", "12,42,10000"])).expect("parses");
        let Command::Synth(a) = cmd else { panic!("not synth") };
        assert_eq!(a.irregular, Some((12, 42, 10_000)));
    }

    #[test]
    fn objective_rejected_on_synth() {
        assert!(parse(&v(&["synth", "--objective", "snr"])).is_err());
    }

    #[test]
    fn zero_wavelengths_rejected() {
        assert!(parse(&v(&["synth", "--wl", "0"])).is_err());
        assert!(parse(&v(&["sweep", "--wl", "0"])).is_err());
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(parse(&v(&["synth", "--grid", "4y8"])).is_err());
        assert!(parse(&v(&["synth", "--wl"])).is_err());
        assert!(parse(&v(&["synth", "--bogus"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
    }

    #[test]
    fn sweep_parses_objective() {
        let cmd = parse(&v(&["sweep", "--grid", "4x4", "--objective", "snr"])).expect("parses");
        let Command::Sweep(a, obj) = cmd else { panic!("not sweep") };
        assert_eq!((a.rows, a.cols), (4, 4));
        assert_eq!(obj, "snr");
        assert!(parse(&v(&["sweep", "--objective", "bogus"])).is_err());
    }

    #[test]
    fn sweep_defaults_to_power_objective() {
        let Command::Sweep(_, obj) = parse(&v(&["sweep"])).expect("parses") else {
            panic!("not sweep")
        };
        assert_eq!(obj, "power");
    }
}
