//! A small, dependency-free argument parser for the `xring` CLI.

use std::fmt;

use xring_obs::TraceFormat;

/// A fully parsed command line: the global flags plus the subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// `--jobs N`: engine worker count (default: one per core).
    pub jobs: Option<usize>,
    /// `--log-level error|warn|info|debug`: structured-log threshold
    /// (default info).
    pub log_level: Option<xring_obs::log::Level>,
    /// `--log-out FILE`: write structured JSONL logs here instead of
    /// stderr.
    pub log_out: Option<String>,
    /// The subcommand.
    pub command: Command,
}

/// Parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `xring synth ...`
    Synth(SynthArgs),
    /// `xring sweep ...` — like synth but sweeping `#wl` and printing
    /// every point. The objective is "il", "power" or "snr".
    Sweep(SynthArgs, String),
    /// `xring batch ...` — run a whole batch of synthesis jobs on the
    /// engine, with per-job deadlines and metrics.
    Batch(BatchArgs),
    /// `xring fault-sweep ...` — synthesize the network at several spare
    /// levels, audit every single-device-fault scenario per level and
    /// print the Pareto report (power × wavelengths × fault margin).
    FaultSweep(SynthArgs, Vec<usize>),
    /// `xring edit ...` — synthesize a base spec cold, drop one traffic
    /// demand, and re-synthesize incrementally; prints cold vs.
    /// incremental wall time and the number of phases replayed from
    /// cached artifacts. The payload is the demand-pair index to drop.
    Edit(SynthArgs, usize),
    /// `xring serve ...` — run the synthesis daemon until it is told to
    /// shut down (POST /shutdown or stdin EOF).
    Serve(ServeArgs),
    /// `xring table <1|2|3>`
    Table(u8),
    /// `xring ablation <shortcuts|pdn|ring|all>`
    Ablation(String),
    /// `xring help` / `--help`
    Help,
}

/// Options of the `synth` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthArgs {
    /// Grid rows (with [`SynthArgs::cols`]); mutually exclusive with
    /// `irregular`.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Grid pitch in µm.
    pub pitch_um: i64,
    /// Irregular placement: `(node count, seed, die µm)`.
    pub irregular: Option<(usize, u64, i64)>,
    /// `#wl` cap.
    pub wavelengths: usize,
    /// `--spares K`: reserve K spare wavelength channels and K spare
    /// MRRs per route; synthesis then proves every single device fault
    /// survivable before releasing the design.
    pub spares: usize,
    /// Ring algorithm: "milp" | "heuristic" | "perimeter".
    pub ring: String,
    /// Degradation policy: "forbid" | "allow" | "force-heuristic".
    pub degradation: String,
    /// LP backend for the ring MILP: "dense" | "revised".
    pub lp_backend: String,
    /// `--solver-threads N`: branch-and-bound worker threads. The
    /// search is deterministic, so any count yields the same design.
    pub solver_threads: usize,
    /// Simplex pricing rule: "dantzig" | "devex" | "partial".
    pub pricing: String,
    /// Basis factorization: "sparse-lu" | "dense-eta".
    pub factorization: String,
    /// Disable Step 2.
    pub no_shortcuts: bool,
    /// Disable openings.
    pub no_openings: bool,
    /// Disable Step 4.
    pub no_pdn: bool,
    /// Write an SVG rendering here.
    pub svg: Option<String>,
    /// Print the full design document.
    pub describe: bool,
    /// `--trace FILE`: write a phase-level trace of the whole run here.
    pub trace: Option<String>,
    /// `--trace-format jsonl|folded`: how to serialize the trace.
    pub trace_format: TraceFormat,
    /// `--solver-log FILE`: stream MILP convergence events (incumbents,
    /// bounds, gaps) as JSON lines here.
    pub solver_log: Option<String>,
    /// `--metrics-out FILE`: write a Prometheus text-format metrics
    /// snapshot of the whole run here.
    pub metrics_out: Option<String>,
}

impl Default for SynthArgs {
    fn default() -> Self {
        SynthArgs {
            rows: 4,
            cols: 4,
            pitch_um: 2_000,
            irregular: None,
            wavelengths: 16,
            spares: 0,
            ring: "milp".into(),
            degradation: "forbid".into(),
            lp_backend: "revised".into(),
            solver_threads: 1,
            pricing: "dantzig".into(),
            factorization: "sparse-lu".into(),
            no_shortcuts: false,
            no_openings: false,
            no_pdn: false,
            svg: None,
            describe: false,
            trace: None,
            trace_format: TraceFormat::default(),
            solver_log: None,
            metrics_out: None,
        }
    }
}

/// Options of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// `--port N`: port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// `--workers N`: engine workers per request (parallelism within a
    /// `/batch`).
    pub workers: usize,
    /// `--max-inflight N`: concurrently-processed request cap.
    pub max_inflight: usize,
    /// `--queue-depth N`: admission queue slots (0 = rendezvous).
    pub queue_depth: usize,
    /// `--deadline-ms N`: default per-request synthesis deadline.
    pub deadline_ms: Option<u64>,
    /// `--cache-bytes N`: design-cache byte budget (0 = unbounded).
    pub cache_bytes: u64,
    /// `--degradation`: default degradation policy for requests.
    pub degradation: String,
    /// `--trace FILE`: write the daemon's trace here after shutdown.
    pub trace: Option<String>,
    /// `--trace-format jsonl|folded`.
    pub trace_format: TraceFormat,
    /// `--metrics-out FILE`: write a final Prometheus snapshot here
    /// after shutdown (the live `GET /metrics` needs no flag).
    pub metrics_out: Option<String>,
    /// `--slo-target-ppm N`: availability/latency SLO target in parts
    /// per million of good requests (default 990000 = 99%).
    pub slo_target_ppm: Option<u32>,
    /// `--slo-latency-ms N`: latency objective — a 2xx response slower
    /// than this is an SLO-bad request (default 1000).
    pub slo_latency_ms: Option<u64>,
    /// `--postmortem FILE`: dump the flight recorder and retained tail
    /// traces here on drain and on a handler panic.
    pub postmortem: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            port: 7878,
            workers: 2,
            max_inflight: 4,
            queue_depth: 16,
            deadline_ms: None,
            cache_bytes: 256 << 20,
            degradation: "forbid".into(),
            trace: None,
            trace_format: TraceFormat::default(),
            metrics_out: None,
            slo_target_ppm: None,
            slo_latency_ms: None,
            postmortem: None,
        }
    }
}

/// Options of the `batch` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchArgs {
    /// The shared network/pipeline flags.
    pub synth: SynthArgs,
    /// `--wl-list a,b,c`: explicit `#wl` candidates (default: the sweep's
    /// power-of-two ladder up to `--wl`).
    pub wl_list: Vec<usize>,
    /// `--deadline-ms N`: per-job synthesis deadline.
    pub deadline_ms: Option<u64>,
    /// `--repeat K`: submit the candidate list K times (repeats hit the
    /// design cache).
    pub repeat: usize,
    /// `--metrics-jsonl FILE`: write engine events as JSON lines.
    pub metrics_jsonl: Option<String>,
}

impl Default for BatchArgs {
    fn default() -> Self {
        BatchArgs {
            synth: SynthArgs::default(),
            wl_list: Vec::new(),
            deadline_ms: None,
            repeat: 1,
            metrics_jsonl: None,
        }
    }
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

/// The usage text.
pub const USAGE: &str = "\
xring — crosstalk-aware synthesis of optical ring routers (DATE 2023 reproduction)

USAGE:
  xring [--jobs N] [--log-level L] [--log-out FILE] <command>

  xring synth [--grid RxC] [--pitch UM] [--irregular N,SEED,DIE_UM]
              [--wl N] [--spares K] [--ring milp|heuristic|perimeter]
              [--degradation forbid|allow|force-heuristic]
              [--lp-backend dense|revised]
              [--no-shortcuts] [--no-openings] [--no-pdn] [--svg FILE]
              [--describe] [--trace FILE] [--trace-format jsonl|folded]
              [--solver-log FILE] [--metrics-out FILE]
  xring sweep [synth flags] [--objective il|power|snr]
  xring batch [synth flags] [--wl-list A,B,C] [--deadline-ms N]
              [--repeat K] [--metrics-jsonl FILE]
  xring fault-sweep [synth flags] [--levels A,B,C]
  xring edit [synth flags] [--drop-pair I]
  xring serve [--port N] [--workers N] [--max-inflight N]
              [--queue-depth N] [--deadline-ms N] [--cache-bytes N]
              [--degradation forbid|allow|force-heuristic]
              [--trace FILE] [--trace-format jsonl|folded]
              [--metrics-out FILE] [--slo-target-ppm N]
              [--slo-latency-ms N] [--postmortem FILE]
  xring table <1|2|3>
  xring ablation <shortcuts|pdn|ring|all>
  xring help

GLOBAL FLAGS:
  --jobs N        worker threads for sweeps, batches, tables and
                  ablations (default: one per core)
  --log-level L   structured-log threshold: error, warn, info or debug
                  (default info)
  --log-out FILE  write structured JSONL log events to FILE instead of
                  stderr; each event carries a timestamp, level, target
                  and — inside the daemon — the request id

DEGRADATION (synth, sweep, batch):
  --degradation forbid           any failure is fatal (default)
  --degradation allow            on a recoverable MILP/deadline/audit
                                 failure, retry with a perturbed
                                 objective, then fall back to the
                                 heuristic ring; the result's provenance
                                 records the degradation level
  --degradation force-heuristic  skip the MILP entirely

SURVIVABILITY (synth, sweep, batch, fault-sweep):
  --spares K      reserve K spare wavelength channels and K spare MRRs
                  per route; synthesis proves every single device fault
                  (MRR drop, waveguide-segment break, wavelength-channel
                  loss) survivable before releasing the design, and
                  fails otherwise (default 0 = no spares, no proof)
  --levels A,B,C  (fault-sweep only) spare levels to sweep; per level
                  the engine synthesizes once, audits every enumerated
                  single-fault scenario across the worker pool and
                  prints power, channel count, fault margin and the
                  Pareto frontier over the three (default 0,1)

INCREMENTAL EDITING (edit):
  xring edit synthesizes the spec cold, drops one traffic demand and
  re-synthesizes the edited spec incrementally: each pipeline phase is
  keyed on a content hash of its inputs, unchanged phases replay from
  cached artifacts, and only the dirty suffix (here: mapping, opening,
  PDN) recomputes. Prints cold vs. incremental wall time, the phases
  replayed, and whether the incremental design is byte-identical to a
  cold synthesis of the edited spec.
  --drop-pair I   index of the demand pair to drop (default 0)

SOLVER BACKEND (synth, sweep, batch):
  --lp-backend revised  revised bounded-variable simplex with native
                        bounds and warm-started branch-and-bound nodes
                        (default)
  --lp-backend dense    dense two-phase tableau — the slower reference
                        kernel, also used automatically by the
                        degradation chain's perturbed retry
  --solver-threads N    branch-and-bound worker threads (default 1);
                        the parallel search is deterministic, so any
                        thread count produces byte-identical designs
  --pricing R           simplex pricing rule: dantzig (default), devex
                        or partial
  --factorization F     simplex basis factorization: sparse-lu
                        (default, bounded eta updates with periodic
                        refactorization) or dense-eta (reference)

TRACING (synth, sweep, batch):
  --trace FILE           record per-phase spans (ring MILP, shortcuts,
                         audit, evaluation, ...), solver counters and
                         engine gauges for the whole run, then write
                         them to FILE on exit
  --trace-format jsonl   one JSON object per span/gauge plus a final
                         totals line (default)
  --trace-format folded  collapsed stacks for flamegraph tooling

SERVING:
  xring serve runs the synthesis daemon: JSON over HTTP/1.1 on
  127.0.0.1 with POST /synth, POST /batch, GET /metrics (live
  Prometheus text), GET /healthz and POST /shutdown (graceful drain;
  stdin EOF also drains).
  --port N          bind port (default 7878; 0 picks an ephemeral port)
  --workers N       engine workers per request (default 2)
  --max-inflight N  concurrently-processed request cap (default 4);
                    beyond it requests queue
  --queue-depth N   admission queue slots (default 16; 0 = rendezvous);
                    beyond them requests shed with 429
  --deadline-ms N   default synthesis deadline per request (requests
                    may override); with --degradation allow an expired
                    deadline degrades instead of failing
  --cache-bytes N   shared design-cache byte budget with LRU eviction
                    (default 268435456; 0 = unbounded)
  --degradation P   default degradation policy for requests
  --trace/--trace-format/--metrics-out as above, flushed on shutdown

  Observability (see docs/OBSERVABILITY.md): every response carries an
  x-request-id header and JSON request_id field; GET /debug/requests,
  /debug/requests/<id> and /debug/slow expose the flight recorder and
  tail-sampled span traces; /metrics exposes SLO burn rates.
  --slo-target-ppm N   good-request target in parts per million for the
                       availability and latency SLOs (default 990000,
                       i.e. 99%)
  --slo-latency-ms N   latency objective: a 2xx answered slower than
                       this counts against the latency SLO and makes
                       the request tail-sampling-worthy (default 1000)
  --postmortem FILE    on drain or handler panic, dump the flight
                       recorder and retained traces to FILE as JSONL

SOLVER TELEMETRY (synth, sweep, batch):
  --solver-log FILE      stream MILP branch-and-bound convergence events
                         (incumbents, best bound, optimality gap) as
                         JSON lines, one object per event
  --metrics-out FILE     write a Prometheus text-format (0.0.4) snapshot
                         of all counters, gauges and latency histograms
                         recorded during the run
";

/// Validates and stores a `--degradation` policy value.
fn set_degradation(v: &str, out: &mut SynthArgs) -> Result<(), ParseArgsError> {
    if !["forbid", "allow", "force-heuristic"].contains(&v) {
        return Err(ParseArgsError(format!(
            "unknown degradation policy {v} (expected forbid, allow or force-heuristic)"
        )));
    }
    out.degradation = v.to_owned();
    Ok(())
}

/// Validates and stores a `--lp-backend` value.
fn set_lp_backend(v: &str, out: &mut SynthArgs) -> Result<(), ParseArgsError> {
    if !["dense", "revised"].contains(&v) {
        return Err(ParseArgsError(format!(
            "unknown lp backend {v} (expected dense or revised)"
        )));
    }
    out.lp_backend = v.to_owned();
    Ok(())
}

/// Validates and stores a `--solver-threads` value.
fn set_solver_threads(v: &str, out: &mut SynthArgs) -> Result<(), ParseArgsError> {
    let n: usize = v
        .parse()
        .map_err(|_| ParseArgsError(format!("bad thread count {v}")))?;
    if n == 0 {
        return Err(ParseArgsError("--solver-threads must be at least 1".into()));
    }
    out.solver_threads = n;
    Ok(())
}

/// Validates and stores a `--pricing` value.
fn set_pricing(v: &str, out: &mut SynthArgs) -> Result<(), ParseArgsError> {
    if !["dantzig", "devex", "partial"].contains(&v) {
        return Err(ParseArgsError(format!(
            "unknown pricing rule {v} (expected dantzig, devex or partial)"
        )));
    }
    out.pricing = v.to_owned();
    Ok(())
}

/// Validates and stores a `--factorization` value.
fn set_factorization(v: &str, out: &mut SynthArgs) -> Result<(), ParseArgsError> {
    if !["sparse-lu", "dense-eta"].contains(&v) {
        return Err(ParseArgsError(format!(
            "unknown factorization {v} (expected sparse-lu or dense-eta)"
        )));
    }
    out.factorization = v.to_owned();
    Ok(())
}

/// Applies one shared synth/network flag. Returns `Ok(false)` when the
/// flag is not a synth flag (so the caller can try its own flags).
///
/// # Errors
///
/// Returns a message describing the malformed flag value.
fn apply_synth_flag<'a, I>(
    flag: &str,
    it: &mut I,
    out: &mut SynthArgs,
) -> Result<bool, ParseArgsError>
where
    I: Iterator<Item = &'a String>,
{
    match flag {
        "--grid" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--grid needs RxC".into()))?;
            let (r, c) = v
                .split_once(['x', 'X'])
                .ok_or_else(|| ParseArgsError(format!("bad grid {v}")))?;
            out.rows = r
                .parse()
                .map_err(|_| ParseArgsError(format!("bad rows {r}")))?;
            out.cols = c
                .parse()
                .map_err(|_| ParseArgsError(format!("bad cols {c}")))?;
        }
        "--pitch" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--pitch needs µm".into()))?;
            out.pitch_um = v
                .parse()
                .map_err(|_| ParseArgsError(format!("bad pitch {v}")))?;
        }
        "--irregular" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--irregular needs N,SEED,DIE_UM".into()))?;
            let parts: Vec<&str> = v.split(',').collect();
            if parts.len() != 3 {
                return Err(ParseArgsError(format!("bad irregular spec {v}")));
            }
            let n = parts[0]
                .parse()
                .map_err(|_| ParseArgsError(format!("bad N {}", parts[0])))?;
            let seed = parts[1]
                .parse()
                .map_err(|_| ParseArgsError(format!("bad seed {}", parts[1])))?;
            let die = parts[2]
                .parse()
                .map_err(|_| ParseArgsError(format!("bad die {}", parts[2])))?;
            out.irregular = Some((n, seed, die));
        }
        "--wl" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--wl needs a count".into()))?;
            out.wavelengths = v
                .parse()
                .map_err(|_| ParseArgsError(format!("bad #wl {v}")))?;
            if out.wavelengths == 0 {
                return Err(ParseArgsError("#wl must be at least 1".into()));
            }
        }
        "--spares" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--spares needs a count".into()))?;
            out.spares = v
                .parse()
                .map_err(|_| ParseArgsError(format!("bad spare count {v}")))?;
        }
        "--ring" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--ring needs an algorithm".into()))?;
            if !["milp", "heuristic", "perimeter"].contains(&v.as_str()) {
                return Err(ParseArgsError(format!("unknown ring algorithm {v}")));
            }
            out.ring = v.clone();
        }
        "--degradation" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--degradation needs a policy".into()))?;
            set_degradation(v, out)?;
        }
        _ if flag.starts_with("--degradation=") => {
            let v = &flag["--degradation=".len()..];
            set_degradation(v, out)?;
        }
        "--lp-backend" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--lp-backend needs a backend".into()))?;
            set_lp_backend(v, out)?;
        }
        _ if flag.starts_with("--lp-backend=") => {
            let v = &flag["--lp-backend=".len()..];
            set_lp_backend(v, out)?;
        }
        "--solver-threads" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--solver-threads needs a count".into()))?;
            set_solver_threads(v, out)?;
        }
        _ if flag.starts_with("--solver-threads=") => {
            let v = &flag["--solver-threads=".len()..];
            set_solver_threads(v, out)?;
        }
        "--pricing" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--pricing needs a rule".into()))?;
            set_pricing(v, out)?;
        }
        _ if flag.starts_with("--pricing=") => {
            let v = &flag["--pricing=".len()..];
            set_pricing(v, out)?;
        }
        "--factorization" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--factorization needs a kind".into()))?;
            set_factorization(v, out)?;
        }
        _ if flag.starts_with("--factorization=") => {
            let v = &flag["--factorization=".len()..];
            set_factorization(v, out)?;
        }
        "--describe" => out.describe = true,
        "--no-shortcuts" => out.no_shortcuts = true,
        "--no-openings" => out.no_openings = true,
        "--no-pdn" => out.no_pdn = true,
        "--svg" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--svg needs a path".into()))?;
            out.svg = Some(v.clone());
        }
        "--trace" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--trace needs a path".into()))?;
            out.trace = Some(v.clone());
        }
        "--trace-format" => {
            let v = it.next().ok_or_else(|| {
                ParseArgsError(format!("--trace-format needs {}", TraceFormat::NAMES))
            })?;
            out.trace_format = v.parse().map_err(ParseArgsError)?;
        }
        "--solver-log" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--solver-log needs a path".into()))?;
            out.solver_log = Some(v.clone());
        }
        "--metrics-out" => {
            let v = it
                .next()
                .ok_or_else(|| ParseArgsError("--metrics-out needs a path".into()))?;
            out.metrics_out = Some(v.clone());
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// The global flags, valid anywhere in the argument vector.
struct Globals {
    jobs: Option<usize>,
    log_level: Option<xring_obs::log::Level>,
    log_out: Option<String>,
}

/// Extracts the global flags (`--jobs`, `--log-level`, `--log-out` —
/// valid anywhere in the argument vector), returning the remaining
/// arguments.
fn extract_globals(args: &[String]) -> Result<(Globals, Vec<String>), ParseArgsError> {
    let mut globals = Globals {
        jobs: None,
        log_level: None,
        log_out: None,
    };
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseArgsError("--jobs needs a worker count".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| ParseArgsError(format!("bad worker count {v}")))?;
                if n == 0 {
                    return Err(ParseArgsError("--jobs must be at least 1".into()));
                }
                globals.jobs = Some(n);
            }
            "--log-level" => {
                let v = it.next().ok_or_else(|| {
                    ParseArgsError("--log-level needs error|warn|info|debug".into())
                })?;
                globals.log_level = Some(v.parse().map_err(ParseArgsError)?);
            }
            "--log-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseArgsError("--log-out needs a path".into()))?;
                globals.log_out = Some(v.clone());
            }
            _ => rest.push(a.clone()),
        }
    }
    Ok((globals, rest))
}

/// Parses a full argument vector (excluding argv\[0\]).
///
/// # Errors
///
/// Returns a message describing the first malformed argument.
pub fn parse(args: &[String]) -> Result<Cli, ParseArgsError> {
    let (globals, args) = extract_globals(args)?;
    let command = parse_command(&args)?;
    Ok(Cli {
        jobs: globals.jobs,
        log_level: globals.log_level,
        log_out: globals.log_out,
        command,
    })
}

fn parse_command(args: &[String]) -> Result<Command, ParseArgsError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "table" => {
            let which = it
                .next()
                .ok_or_else(|| ParseArgsError("table needs a number (1, 2 or 3)".into()))?;
            match which.as_str() {
                "1" => Ok(Command::Table(1)),
                "2" => Ok(Command::Table(2)),
                "3" => Ok(Command::Table(3)),
                other => Err(ParseArgsError(format!("unknown table {other}"))),
            }
        }
        "ablation" => {
            let which = it.next().map(String::as_str).unwrap_or("all");
            if ["shortcuts", "pdn", "ring", "all"].contains(&which) {
                Ok(Command::Ablation(which.to_string()))
            } else {
                Err(ParseArgsError(format!("unknown ablation {which}")))
            }
        }
        "batch" => {
            let mut out = BatchArgs::default();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--wl-list" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--wl-list needs A,B,C".into()))?;
                        out.wl_list = v
                            .split(',')
                            .map(|p| {
                                p.parse::<usize>()
                                    .map_err(|_| ParseArgsError(format!("bad #wl {p}")))
                                    .and_then(|n| {
                                        if n == 0 {
                                            Err(ParseArgsError("#wl must be at least 1".into()))
                                        } else {
                                            Ok(n)
                                        }
                                    })
                            })
                            .collect::<Result<_, _>>()?;
                        if out.wl_list.is_empty() {
                            return Err(ParseArgsError("--wl-list needs A,B,C".into()));
                        }
                    }
                    "--deadline-ms" => {
                        let v = it.next().ok_or_else(|| {
                            ParseArgsError("--deadline-ms needs milliseconds".into())
                        })?;
                        out.deadline_ms = Some(
                            v.parse()
                                .map_err(|_| ParseArgsError(format!("bad deadline {v}")))?,
                        );
                    }
                    "--repeat" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--repeat needs a count".into()))?;
                        out.repeat = v
                            .parse()
                            .map_err(|_| ParseArgsError(format!("bad repeat {v}")))?;
                        if out.repeat == 0 {
                            return Err(ParseArgsError("--repeat must be at least 1".into()));
                        }
                    }
                    "--metrics-jsonl" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--metrics-jsonl needs a path".into()))?;
                        out.metrics_jsonl = Some(v.clone());
                    }
                    other => {
                        if !apply_synth_flag(other, &mut it, &mut out.synth)? {
                            return Err(ParseArgsError(format!("unknown flag {other}")));
                        }
                    }
                }
            }
            Ok(Command::Batch(out))
        }
        "serve" => {
            let mut out = ServeArgs::default();
            // Shared synth-flag machinery is deliberately not reused
            // here: serve's knobs are operational (ports, queues,
            // budgets), not synthesis parameters — requests carry those.
            while let Some(flag) = it.next() {
                let mut num = |name: &str| -> Result<u64, ParseArgsError> {
                    let v = it
                        .next()
                        .ok_or_else(|| ParseArgsError(format!("{name} needs a value")))?;
                    v.parse()
                        .map_err(|_| ParseArgsError(format!("bad {name} value {v}")))
                };
                match flag.as_str() {
                    "--port" => {
                        out.port = u16::try_from(num("--port")?)
                            .map_err(|_| ParseArgsError("--port must fit in 16 bits".into()))?;
                    }
                    "--workers" => {
                        out.workers = num("--workers")? as usize;
                        if out.workers == 0 {
                            return Err(ParseArgsError("--workers must be at least 1".into()));
                        }
                    }
                    "--max-inflight" => {
                        out.max_inflight = num("--max-inflight")? as usize;
                        if out.max_inflight == 0 {
                            return Err(ParseArgsError("--max-inflight must be at least 1".into()));
                        }
                    }
                    "--queue-depth" => out.queue_depth = num("--queue-depth")? as usize,
                    "--deadline-ms" => {
                        let ms = num("--deadline-ms")?;
                        if ms == 0 {
                            return Err(ParseArgsError("--deadline-ms must be at least 1".into()));
                        }
                        out.deadline_ms = Some(ms);
                    }
                    "--cache-bytes" => out.cache_bytes = num("--cache-bytes")?,
                    "--degradation" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--degradation needs a policy".into()))?;
                        let mut scratch = SynthArgs::default();
                        set_degradation(v, &mut scratch)?;
                        out.degradation = scratch.degradation;
                    }
                    "--trace" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--trace needs a path".into()))?;
                        out.trace = Some(v.clone());
                    }
                    "--trace-format" => {
                        let v = it.next().ok_or_else(|| {
                            ParseArgsError(format!("--trace-format needs {}", TraceFormat::NAMES))
                        })?;
                        out.trace_format = v.parse().map_err(ParseArgsError)?;
                    }
                    "--metrics-out" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--metrics-out needs a path".into()))?;
                        out.metrics_out = Some(v.clone());
                    }
                    "--slo-target-ppm" => {
                        let ppm = num("--slo-target-ppm")?;
                        if ppm == 0 || ppm >= 1_000_000 {
                            return Err(ParseArgsError(
                                "--slo-target-ppm must be in 1..=999999".into(),
                            ));
                        }
                        out.slo_target_ppm = Some(ppm as u32);
                    }
                    "--slo-latency-ms" => {
                        let ms = num("--slo-latency-ms")?;
                        if ms == 0 {
                            return Err(ParseArgsError(
                                "--slo-latency-ms must be at least 1".into(),
                            ));
                        }
                        out.slo_latency_ms = Some(ms);
                    }
                    "--postmortem" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--postmortem needs a path".into()))?;
                        out.postmortem = Some(v.clone());
                    }
                    other => return Err(ParseArgsError(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Serve(out))
        }
        "edit" => {
            let mut drop_pair = 0usize;
            let mut out = SynthArgs::default();
            while let Some(flag) = it.next() {
                if flag == "--drop-pair" {
                    let v = it
                        .next()
                        .ok_or_else(|| ParseArgsError("--drop-pair needs an index".into()))?;
                    drop_pair = v
                        .parse()
                        .map_err(|_| ParseArgsError(format!("bad pair index {v}")))?;
                    continue;
                }
                if !apply_synth_flag(flag, &mut it, &mut out)? {
                    return Err(ParseArgsError(format!("unknown flag {flag}")));
                }
            }
            Ok(Command::Edit(out, drop_pair))
        }
        "fault-sweep" => {
            let mut levels: Vec<usize> = vec![0, 1];
            let mut out = SynthArgs::default();
            while let Some(flag) = it.next() {
                if flag == "--levels" {
                    let v = it
                        .next()
                        .ok_or_else(|| ParseArgsError("--levels needs A,B,C".into()))?;
                    levels = v
                        .split(',')
                        .map(|p| {
                            p.parse::<usize>()
                                .map_err(|_| ParseArgsError(format!("bad spare level {p}")))
                        })
                        .collect::<Result<_, _>>()?;
                    continue;
                }
                if !apply_synth_flag(flag, &mut it, &mut out)? {
                    return Err(ParseArgsError(format!("unknown flag {flag}")));
                }
            }
            Ok(Command::FaultSweep(out, levels))
        }
        cmd @ ("synth" | "sweep") => {
            let is_sweep = cmd == "sweep";
            let mut objective = "power".to_string();
            let mut out = SynthArgs::default();
            while let Some(flag) = it.next() {
                if flag == "--objective" {
                    if !is_sweep {
                        return Err(ParseArgsError(
                            "--objective only applies to the sweep command".into(),
                        ));
                    }
                    let v = it
                        .next()
                        .ok_or_else(|| ParseArgsError("--objective needs il|power|snr".into()))?;
                    if !["il", "power", "snr"].contains(&v.as_str()) {
                        return Err(ParseArgsError(format!("unknown objective {v}")));
                    }
                    objective = v.clone();
                    continue;
                }
                if !apply_synth_flag(flag, &mut it, &mut out)? {
                    return Err(ParseArgsError(format!("unknown flag {flag}")));
                }
            }
            if is_sweep {
                Ok(Command::Sweep(out, objective))
            } else {
                Ok(Command::Synth(out))
            }
        }
        other => Err(ParseArgsError(format!("unknown command {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn cmd(args: &[&str]) -> Command {
        parse(&v(args)).expect("parses").command
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(cmd(&[]), Command::Help);
        assert_eq!(cmd(&["--help"]), Command::Help);
    }

    #[test]
    fn table_parsing() {
        assert_eq!(cmd(&["table", "2"]), Command::Table(2));
        assert!(parse(&v(&["table", "9"])).is_err());
        assert!(parse(&v(&["table"])).is_err());
    }

    #[test]
    fn ablation_defaults_to_all() {
        assert_eq!(cmd(&["ablation"]), Command::Ablation("all".into()));
        assert!(parse(&v(&["ablation", "bogus"])).is_err());
    }

    #[test]
    fn jobs_flag_is_global() {
        let cli = parse(&v(&["--jobs", "4", "table", "1"])).expect("parses");
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.command, Command::Table(1));
        // Anywhere in the vector, including after the subcommand.
        let cli = parse(&v(&["sweep", "--jobs", "2", "--wl", "8"])).expect("parses");
        assert_eq!(cli.jobs, Some(2));
        let Command::Sweep(a, _) = cli.command else {
            panic!("not sweep")
        };
        assert_eq!(a.wavelengths, 8);
        assert_eq!(parse(&v(&["table", "1"])).expect("parses").jobs, None);
    }

    #[test]
    fn log_flags_are_global() {
        let cli = parse(&v(&["--log-level", "debug", "table", "1"])).expect("parses");
        assert_eq!(cli.log_level, Some(xring_obs::log::Level::Debug));
        assert_eq!(cli.command, Command::Table(1));
        // Anywhere in the vector, including after the subcommand.
        let cli = parse(&v(&["serve", "--log-out", "d.log", "--port", "0"])).expect("parses");
        assert_eq!(cli.log_out.as_deref(), Some("d.log"));
        let cli = parse(&v(&["table", "1"])).expect("parses");
        assert_eq!((cli.log_level, cli.log_out), (None, None));
        assert!(parse(&v(&["--log-level", "verbose", "table", "1"])).is_err());
        assert!(parse(&v(&["table", "1", "--log-out"])).is_err());
    }

    #[test]
    fn serve_slo_and_postmortem_flags() {
        let Command::Serve(a) = cmd(&[
            "serve",
            "--slo-target-ppm",
            "999000",
            "--slo-latency-ms",
            "250",
            "--postmortem",
            "pm.jsonl",
        ]) else {
            panic!("not serve")
        };
        assert_eq!(a.slo_target_ppm, Some(999_000));
        assert_eq!(a.slo_latency_ms, Some(250));
        assert_eq!(a.postmortem.as_deref(), Some("pm.jsonl"));
        // Defaults and rejects.
        let Command::Serve(a) = cmd(&["serve"]) else {
            panic!("not serve")
        };
        assert_eq!(
            (a.slo_target_ppm, a.slo_latency_ms, a.postmortem),
            (None, None, None)
        );
        assert!(parse(&v(&["serve", "--slo-target-ppm", "0"])).is_err());
        assert!(parse(&v(&["serve", "--slo-target-ppm", "1000000"])).is_err());
        assert!(parse(&v(&["serve", "--slo-latency-ms", "0"])).is_err());
        assert!(parse(&v(&["serve", "--postmortem"])).is_err());
    }

    #[test]
    fn bad_jobs_values_are_rejected() {
        assert!(parse(&v(&["--jobs", "0", "table", "1"])).is_err());
        assert!(parse(&v(&["--jobs", "zero", "table", "1"])).is_err());
        assert!(parse(&v(&["table", "1", "--jobs"])).is_err());
    }

    #[test]
    fn serve_defaults_and_full_flags() {
        let Command::Serve(a) = cmd(&["serve"]) else {
            panic!("not serve")
        };
        assert_eq!(a, ServeArgs::default());
        assert_eq!(a.port, 7878);
        assert_eq!(a.cache_bytes, 256 << 20);

        let Command::Serve(a) = cmd(&[
            "serve",
            "--port",
            "0",
            "--workers",
            "3",
            "--max-inflight",
            "8",
            "--queue-depth",
            "0",
            "--deadline-ms",
            "250",
            "--cache-bytes",
            "1048576",
            "--degradation",
            "allow",
            "--trace",
            "t.jsonl",
            "--metrics-out",
            "m.prom",
        ]) else {
            panic!("not serve")
        };
        assert_eq!(
            (a.port, a.workers, a.max_inflight, a.queue_depth),
            (0, 3, 8, 0)
        );
        assert_eq!(a.deadline_ms, Some(250));
        assert_eq!(a.cache_bytes, 1_048_576);
        assert_eq!(a.degradation, "allow");
        assert_eq!(a.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(a.metrics_out.as_deref(), Some("m.prom"));
    }

    #[test]
    fn serve_rejects_bad_values() {
        assert!(parse(&v(&["serve", "--workers", "0"])).is_err());
        assert!(parse(&v(&["serve", "--max-inflight", "0"])).is_err());
        assert!(parse(&v(&["serve", "--deadline-ms", "0"])).is_err());
        assert!(parse(&v(&["serve", "--port", "65536"])).is_err());
        assert!(parse(&v(&["serve", "--degradation", "never"])).is_err());
        assert!(parse(&v(&["serve", "--wl", "8"])).is_err());
        assert!(parse(&v(&["serve", "--cache-bytes"])).is_err());
    }

    #[test]
    fn synth_full_flags() {
        let c = cmd(&[
            "synth",
            "--grid",
            "4x8",
            "--pitch",
            "2500",
            "--wl",
            "20",
            "--ring",
            "heuristic",
            "--no-pdn",
            "--svg",
            "out.svg",
        ]);
        let Command::Synth(a) = c else {
            panic!("not synth")
        };
        assert_eq!((a.rows, a.cols, a.pitch_um), (4, 8, 2_500));
        assert_eq!(a.wavelengths, 20);
        assert_eq!(a.ring, "heuristic");
        assert!(a.no_pdn && !a.no_shortcuts && !a.no_openings);
        assert_eq!(a.svg.as_deref(), Some("out.svg"));
    }

    #[test]
    fn synth_irregular() {
        let Command::Synth(a) = cmd(&["synth", "--irregular", "12,42,10000"]) else {
            panic!("not synth")
        };
        assert_eq!(a.irregular, Some((12, 42, 10_000)));
    }

    #[test]
    fn batch_full_flags() {
        let c = cmd(&[
            "batch",
            "--grid",
            "2x4",
            "--pitch",
            "1500",
            "--wl-list",
            "2,4,8",
            "--deadline-ms",
            "250",
            "--repeat",
            "3",
            "--metrics-jsonl",
            "events.jsonl",
        ]);
        let Command::Batch(b) = c else {
            panic!("not batch")
        };
        assert_eq!(
            (b.synth.rows, b.synth.cols, b.synth.pitch_um),
            (2, 4, 1_500)
        );
        assert_eq!(b.wl_list, vec![2, 4, 8]);
        assert_eq!(b.deadline_ms, Some(250));
        assert_eq!(b.repeat, 3);
        assert_eq!(b.metrics_jsonl.as_deref(), Some("events.jsonl"));
    }

    #[test]
    fn batch_defaults() {
        let Command::Batch(b) = cmd(&["batch"]) else {
            panic!("not batch")
        };
        assert!(b.wl_list.is_empty());
        assert_eq!(b.repeat, 1);
        assert_eq!(b.deadline_ms, None);
        assert_eq!(b.metrics_jsonl, None);
    }

    #[test]
    fn batch_rejects_bad_values() {
        assert!(parse(&v(&["batch", "--wl-list", "2,zero"])).is_err());
        assert!(parse(&v(&["batch", "--wl-list", "0"])).is_err());
        assert!(parse(&v(&["batch", "--repeat", "0"])).is_err());
        assert!(parse(&v(&["batch", "--deadline-ms", "soon"])).is_err());
        assert!(parse(&v(&["batch", "--objective", "snr"])).is_err());
    }

    #[test]
    fn objective_rejected_on_synth() {
        assert!(parse(&v(&["synth", "--objective", "snr"])).is_err());
    }

    #[test]
    fn degradation_flag_both_forms() {
        let Command::Synth(a) = cmd(&["synth", "--degradation", "allow"]) else {
            panic!("not synth")
        };
        assert_eq!(a.degradation, "allow");
        let Command::Synth(a) = cmd(&["synth", "--degradation=force-heuristic"]) else {
            panic!("not synth")
        };
        assert_eq!(a.degradation, "force-heuristic");
        let Command::Batch(b) = cmd(&["batch", "--degradation=allow"]) else {
            panic!("not batch")
        };
        assert_eq!(b.synth.degradation, "allow");
        // Default and rejects.
        let Command::Synth(a) = cmd(&["synth"]) else {
            panic!("not synth")
        };
        assert_eq!(a.degradation, "forbid");
        assert!(parse(&v(&["synth", "--degradation", "sometimes"])).is_err());
        assert!(parse(&v(&["synth", "--degradation=bogus"])).is_err());
        assert!(parse(&v(&["synth", "--degradation"])).is_err());
    }

    #[test]
    fn lp_backend_flag_both_forms() {
        let Command::Synth(a) = cmd(&["synth", "--lp-backend", "dense"]) else {
            panic!("not synth")
        };
        assert_eq!(a.lp_backend, "dense");
        let Command::Synth(a) = cmd(&["synth", "--lp-backend=revised"]) else {
            panic!("not synth")
        };
        assert_eq!(a.lp_backend, "revised");
        let Command::Batch(b) = cmd(&["batch", "--lp-backend=dense"]) else {
            panic!("not batch")
        };
        assert_eq!(b.synth.lp_backend, "dense");
        // Default and rejects.
        let Command::Synth(a) = cmd(&["synth"]) else {
            panic!("not synth")
        };
        assert_eq!(a.lp_backend, "revised");
        assert!(parse(&v(&["synth", "--lp-backend", "tableau"])).is_err());
        assert!(parse(&v(&["synth", "--lp-backend=bogus"])).is_err());
        assert!(parse(&v(&["synth", "--lp-backend"])).is_err());
    }

    #[test]
    fn solver_threads_flag_both_forms() {
        let Command::Synth(a) = cmd(&["synth", "--solver-threads", "4"]) else {
            panic!("not synth")
        };
        assert_eq!(a.solver_threads, 4);
        let Command::Synth(a) = cmd(&["synth", "--solver-threads=8"]) else {
            panic!("not synth")
        };
        assert_eq!(a.solver_threads, 8);
        // Default and rejects.
        let Command::Synth(a) = cmd(&["synth"]) else {
            panic!("not synth")
        };
        assert_eq!(a.solver_threads, 1);
        assert!(parse(&v(&["synth", "--solver-threads", "0"])).is_err());
        assert!(parse(&v(&["synth", "--solver-threads=nope"])).is_err());
        assert!(parse(&v(&["synth", "--solver-threads"])).is_err());
    }

    #[test]
    fn pricing_flag_both_forms() {
        let Command::Synth(a) = cmd(&["synth", "--pricing", "devex"]) else {
            panic!("not synth")
        };
        assert_eq!(a.pricing, "devex");
        let Command::Synth(a) = cmd(&["synth", "--pricing=partial"]) else {
            panic!("not synth")
        };
        assert_eq!(a.pricing, "partial");
        let Command::Synth(a) = cmd(&["synth"]) else {
            panic!("not synth")
        };
        assert_eq!(a.pricing, "dantzig");
        assert!(parse(&v(&["synth", "--pricing", "steepest"])).is_err());
        assert!(parse(&v(&["synth", "--pricing"])).is_err());
    }

    #[test]
    fn factorization_flag_both_forms() {
        let Command::Synth(a) = cmd(&["synth", "--factorization", "dense-eta"]) else {
            panic!("not synth")
        };
        assert_eq!(a.factorization, "dense-eta");
        let Command::Synth(a) = cmd(&["synth", "--factorization=sparse-lu"]) else {
            panic!("not synth")
        };
        assert_eq!(a.factorization, "sparse-lu");
        let Command::Synth(a) = cmd(&["synth"]) else {
            panic!("not synth")
        };
        assert_eq!(a.factorization, "sparse-lu");
        assert!(parse(&v(&["synth", "--factorization", "qr"])).is_err());
        assert!(parse(&v(&["synth", "--factorization"])).is_err());
    }

    #[test]
    fn trace_flags_parse_on_every_synthesis_command() {
        let Command::Synth(a) = cmd(&["synth", "--trace", "out.jsonl"]) else {
            panic!("not synth")
        };
        assert_eq!(a.trace.as_deref(), Some("out.jsonl"));
        assert_eq!(a.trace_format, TraceFormat::Jsonl); // default
        let Command::Sweep(a, _) =
            cmd(&["sweep", "--trace", "t.folded", "--trace-format", "folded"])
        else {
            panic!("not sweep")
        };
        assert_eq!(a.trace.as_deref(), Some("t.folded"));
        assert_eq!(a.trace_format, TraceFormat::Folded);
        let Command::Batch(b) = cmd(&["batch", "--trace", "b.jsonl", "--trace-format", "jsonl"])
        else {
            panic!("not batch")
        };
        assert_eq!(b.synth.trace.as_deref(), Some("b.jsonl"));
        assert_eq!(b.synth.trace_format, TraceFormat::Jsonl);
    }

    #[test]
    fn telemetry_flags_parse_on_every_synthesis_command() {
        let Command::Synth(a) = cmd(&["synth", "--solver-log", "conv.jsonl"]) else {
            panic!("not synth")
        };
        assert_eq!(a.solver_log.as_deref(), Some("conv.jsonl"));
        assert_eq!(a.metrics_out, None);
        let Command::Sweep(a, _) = cmd(&["sweep", "--metrics-out", "metrics.prom"]) else {
            panic!("not sweep")
        };
        assert_eq!(a.metrics_out.as_deref(), Some("metrics.prom"));
        let Command::Batch(b) = cmd(&[
            "batch",
            "--solver-log",
            "c.jsonl",
            "--metrics-out",
            "m.prom",
        ]) else {
            panic!("not batch")
        };
        assert_eq!(b.synth.solver_log.as_deref(), Some("c.jsonl"));
        assert_eq!(b.synth.metrics_out.as_deref(), Some("m.prom"));
        assert!(parse(&v(&["synth", "--solver-log"])).is_err());
        assert!(parse(&v(&["sweep", "--metrics-out"])).is_err());
    }

    #[test]
    fn bad_trace_flags_are_rejected() {
        assert!(parse(&v(&["synth", "--trace"])).is_err());
        assert!(parse(&v(&["synth", "--trace-format"])).is_err());
        assert!(parse(&v(&["synth", "--trace-format", "xml"])).is_err());
        let err = parse(&v(&["sweep", "--trace-format", "protobuf"])).unwrap_err();
        assert!(err.0.contains("jsonl|folded"), "{err}");
    }

    #[test]
    fn zero_wavelengths_rejected() {
        assert!(parse(&v(&["synth", "--wl", "0"])).is_err());
        assert!(parse(&v(&["sweep", "--wl", "0"])).is_err());
        assert!(parse(&v(&["batch", "--wl", "0"])).is_err());
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(parse(&v(&["synth", "--grid", "4y8"])).is_err());
        assert!(parse(&v(&["synth", "--wl"])).is_err());
        assert!(parse(&v(&["synth", "--bogus"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
    }

    #[test]
    fn spares_flag_parses_on_every_synthesis_command() {
        let Command::Synth(a) = cmd(&["synth", "--spares", "1"]) else {
            panic!("not synth")
        };
        assert_eq!(a.spares, 1);
        let Command::Sweep(a, _) = cmd(&["sweep", "--spares", "2"]) else {
            panic!("not sweep")
        };
        assert_eq!(a.spares, 2);
        let Command::Batch(b) = cmd(&["batch", "--spares", "1"]) else {
            panic!("not batch")
        };
        assert_eq!(b.synth.spares, 1);
        // Default and rejects.
        let Command::Synth(a) = cmd(&["synth"]) else {
            panic!("not synth")
        };
        assert_eq!(a.spares, 0);
        assert!(parse(&v(&["synth", "--spares"])).is_err());
        assert!(parse(&v(&["synth", "--spares", "many"])).is_err());
    }

    #[test]
    fn edit_defaults_and_flags() {
        let Command::Edit(a, drop_pair) = cmd(&["edit"]) else {
            panic!("not edit")
        };
        assert_eq!(a, SynthArgs::default());
        assert_eq!(drop_pair, 0);
        let Command::Edit(a, drop_pair) = cmd(&[
            "edit",
            "--irregular",
            "16,5,8000",
            "--wl",
            "8",
            "--drop-pair",
            "3",
        ]) else {
            panic!("not edit")
        };
        assert_eq!(a.irregular, Some((16, 5, 8_000)));
        assert_eq!(a.wavelengths, 8);
        assert_eq!(drop_pair, 3);
        assert!(parse(&v(&["edit", "--drop-pair"])).is_err());
        assert!(parse(&v(&["edit", "--drop-pair", "first"])).is_err());
        assert!(parse(&v(&["edit", "--objective", "snr"])).is_err());
    }

    #[test]
    fn fault_sweep_defaults_and_levels() {
        let Command::FaultSweep(a, levels) = cmd(&["fault-sweep"]) else {
            panic!("not fault-sweep")
        };
        assert_eq!(a, SynthArgs::default());
        assert_eq!(levels, vec![0, 1]);
        let Command::FaultSweep(a, levels) = cmd(&[
            "fault-sweep",
            "--grid",
            "2x4",
            "--wl",
            "8",
            "--levels",
            "0,1,2",
        ]) else {
            panic!("not fault-sweep")
        };
        assert_eq!((a.rows, a.cols, a.wavelengths), (2, 4, 8));
        assert_eq!(levels, vec![0, 1, 2]);
        assert!(parse(&v(&["fault-sweep", "--levels"])).is_err());
        assert!(parse(&v(&["fault-sweep", "--levels", "one"])).is_err());
        assert!(parse(&v(&["fault-sweep", "--objective", "snr"])).is_err());
    }

    #[test]
    fn sweep_parses_objective() {
        let c = cmd(&["sweep", "--grid", "4x4", "--objective", "snr"]);
        let Command::Sweep(a, obj) = c else {
            panic!("not sweep")
        };
        assert_eq!((a.rows, a.cols), (4, 4));
        assert_eq!(obj, "snr");
        assert!(parse(&v(&["sweep", "--objective", "bogus"])).is_err());
    }

    #[test]
    fn sweep_defaults_to_power_objective() {
        let Command::Sweep(_, obj) = cmd(&["sweep"]) else {
            panic!("not sweep")
        };
        assert_eq!(obj, "power");
    }
}
