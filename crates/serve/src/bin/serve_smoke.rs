//! CI smoke check for the daemon, run by `ci.sh`.
//!
//! Starts a daemon in-process on an ephemeral port, exercises every
//! endpoint once, drains it, and verifies no thread leaked — the whole
//! lifecycle a deployment would see, compressed into one binary whose
//! exit code is the verdict.

use std::time::Duration;

use xring_core::DegradationPolicy;
use xring_serve::{client, ServeConfig, Server};

fn thread_count() -> usize {
    // Linux-specific but CI runs on Linux; elsewhere the check is
    // skipped rather than failed.
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn check(name: &str, ok: bool) {
    if ok {
        eprintln!("serve-smoke: {name} ok");
    } else {
        eprintln!("serve-smoke: {name} FAILED");
        std::process::exit(1);
    }
}

fn main() {
    let threads_before = thread_count();

    let mut server = Server::start(ServeConfig {
        workers: 2,
        max_inflight: 2,
        queue_depth: 4,
        deadline: Some(Duration::from_secs(30)),
        degradation: DegradationPolicy::Allow,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr();
    eprintln!("serve-smoke: listening on {addr}");

    let (status, body) =
        client::http_request(addr, "GET", "/healthz", "").expect("healthz reachable");
    check(
        "healthz",
        status == 200
            && body.contains("\"status\":\"ok\"")
            && body.contains("\"uptime_s\":")
            && body.contains("\"version\":\""),
    );

    let (status, headers, body) = client::http_request_full(
        addr,
        "POST",
        "/synth",
        &[("x-request-id", "00000000000000000000000000abcdef")],
        r#"{"label": "smoke", "net": {"named": "proton_8"}, "options": {"max_wavelengths": 8}}"#,
    )
    .expect("synth reachable");
    check(
        "synth",
        status == 200
            && body.contains("\"label\":\"smoke\"")
            && body.contains("\"audit\":{\"clean\":true")
            && body.contains("\"degradation\":\"exact\""),
    );
    // The daemon must honor the caller's request id and echo it in both
    // the response header and the JSON body.
    check(
        "request-id-echo",
        headers
            .iter()
            .any(|(n, v)| n == "x-request-id" && v == "00000000000000000000000000abcdef")
            && body.contains("\"request_id\":\"00000000000000000000000000abcdef\""),
    );

    // The same spec again must come from the shared cache.
    let (status, body) = client::http_request(
        addr,
        "POST",
        "/synth",
        r#"{"label": "smoke2", "net": {"named": "proton_8"}, "options": {"max_wavelengths": 8}}"#,
    )
    .expect("synth reachable");
    check(
        "cache-hit",
        status == 200 && body.contains("\"cache_hit\":true"),
    );

    let (status, body) =
        client::http_request(addr, "POST", "/synth", "{ not json").expect("bad request reachable");
    check(
        "bad-json-400",
        status == 400 && body.contains("\"code\":\"bad_json\""),
    );

    let (status, text) =
        client::http_request(addr, "GET", "/metrics", "").expect("metrics reachable");
    check(
        "metrics",
        status == 200
            && xring_obs::validate_exposition(&text).is_ok()
            && text.contains("xring_serve_request_wall_us_bucket")
            && text.contains("xring_serve_ok_total")
            && text.contains("xring_serve_slo_availability_good_total")
            && text.contains("xring_serve_slo_availability_burn_rate_5m"),
    );

    let (status, body) =
        client::http_request(addr, "GET", "/debug/requests", "").expect("flight reachable");
    check(
        "flight-recorder",
        status == 200
            && body.contains("\"records\":[")
            && body.contains("\"route\":\"/synth\"")
            && body.contains("\"id\":\"00000000000000000000000000abcdef\""),
    );

    let (status, body) = client::http_request(
        addr,
        "GET",
        "/debug/requests/00000000000000000000000000abcdef",
        "",
    )
    .expect("flight lookup reachable");
    check(
        "flight-lookup",
        status == 200 && body.contains("\"record\":{") && body.contains("\"phases\":{"),
    );

    let (status, body) =
        client::http_request(addr, "POST", "/shutdown", "").expect("shutdown reachable");
    check("shutdown", status == 200 && body.contains("draining"));
    server.shutdown();
    check("drained", server.metrics().ok() >= 3);

    // Give the OS a beat to reap finished threads before counting.
    std::thread::sleep(Duration::from_millis(100));
    let threads_after = thread_count();
    if threads_before > 0 {
        check("no-leaked-threads", threads_after <= threads_before);
    }
    eprintln!("serve-smoke: all checks passed");
}
