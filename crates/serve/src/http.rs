//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The daemon needs exactly four things from HTTP: a request line, a
//! `Content-Length`-framed body, a status line back, and `Connection:
//! close` semantics (one request per connection — admission control is
//! per request, so keep-alive would complicate the accounting for no
//! benefit at the daemon's request sizes). Everything else — chunked
//! encoding, compression, TLS — is out of scope on purpose; the
//! workspace is std-only and this layer must stay auditable.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// How long a connected client may take to deliver its request before
/// the read aborts. Bounds slow-loris connections: an accepted socket
/// can stall the accept loop for at most this long.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed request: method, path, headers and (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased by the client.
    pub method: String,
    /// Request path including any query string, e.g. `/synth`.
    pub path: String,
    /// Header `(name, value)` pairs in wire order; names lowercased,
    /// values trimmed. Duplicates are kept as received.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// The value of the first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire were not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// The head or body exceeded the configured bound → 413.
    TooLarge(String),
    /// The socket failed or timed out mid-request.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request from `stream`. `max_body` bounds the body size
/// (a `Content-Length` beyond it fails fast with
/// [`HttpError::TooLarge`] before any body byte is read).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    // Read until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?
        .to_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line: {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version: {version:?}")));
    }

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line: {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length: {value:?}")))?;
        }
        if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed(
                "chunked transfer encoding is not supported".into(),
            ));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "content-length {content_length} exceeds limit {max_body}"
        )));
    }

    // The body: whatever followed the head in `buf`, then the rest.
    let mut body = buf.split_off(head_end + 4);
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "body longer than content-length".into(),
        ));
    }
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > content_length {
            return Err(HttpError::Malformed(
                "body longer than content-length".into(),
            ));
        }
    }
    let body =
        String::from_utf8(body).map_err(|_| HttpError::Malformed("body is not UTF-8".into()))?;
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the handful of status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one `Connection: close` response and flushes it. Errors are
/// returned, not panicked — a client that hung up mid-response is
/// routine for a server.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write_response_with(stream, status, content_type, &[], body)
}

/// [`write_response`] with extra response headers (e.g. the
/// `x-request-id` echo). Header names and values must be wire-safe; the
/// caller controls both.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    /// Runs `read_request` against raw bytes delivered over a real
    /// socket pair, mirroring production framing exactly.
    fn read_raw(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
            // Keep the socket open until the reader is done; dropping
            // early would race a clean close against a mid-body close.
            s.shutdown(std::net::Shutdown::Write).ok();
            let mut sink = Vec::new();
            s.read_to_end(&mut sink).ok();
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let result = read_request(&mut conn, max_body);
        drop(conn);
        writer.join().expect("writer");
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = read_raw(
            b"POST /synth HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"",
            1024,
        )
        .expect("parsed");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/synth");
        assert_eq!(req.body, "{\"a\"");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"), "lookup is case-insensitive");
        assert_eq!(req.header("content-length"), Some("4"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn captures_headers_in_order_with_trimmed_values() {
        let req = read_raw(
            b"GET /x HTTP/1.1\r\nX-Request-Id: abc123  \r\nTraceparent: 00-ff-ee-01\r\n\r\n",
            1024,
        )
        .expect("parsed");
        assert_eq!(req.header("x-request-id"), Some("abc123"));
        assert_eq!(req.header("traceparent"), Some("00-ff-ee-01"));
        assert_eq!(req.headers[0].0, "x-request-id", "names are lowercased");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = read_raw(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", 1024).expect("parsed");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_garbage_and_bad_framing() {
        assert!(matches!(
            read_raw(b"not http at all\r\n\r\n", 1024),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_raw(b"GET /x HTTP/2.0\r\n\r\n", 1024),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_raw(b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 1024),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_raw(
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                1024
            ),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn caps_oversize_bodies_before_reading_them() {
        let result = read_raw(b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 1024);
        assert!(matches!(result, Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn write_response_with_emits_extra_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reader = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut out = String::new();
            s.read_to_string(&mut out).expect("read");
            out
        });
        let (mut conn, _) = listener.accept().expect("accept");
        write_response_with(
            &mut conn,
            200,
            "application/json",
            &[("x-request-id", "deadbeef")],
            "{}",
        )
        .expect("write");
        drop(conn);
        let out = reader.join().expect("reader");
        assert!(out.contains("\r\nx-request-id: deadbeef\r\n"), "{out}");
        assert!(out.contains("Connection: close\r\n\r\n{}"), "{out}");
    }

    #[test]
    fn reports_truncated_bodies() {
        let result = read_raw(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 1024);
        assert!(matches!(result, Err(HttpError::Malformed(_))));
    }
}
