//! Live daemon metrics.
//!
//! The global xring-obs recorder is drain-on-finish — right for batch
//! runs, wrong for a daemon whose `/metrics` endpoint must answer at any
//! moment without destroying state. So the daemon owns *always-on local*
//! instruments (the same lock-free [`Histogram`] type plus plain
//! atomics) and renders a scrape by assembling a point-in-time
//! [`Trace`] value and reusing [`Trace::write_prometheus`] — one
//! exposition renderer in the workspace, two lifecycles.
//!
//! Every sample is additionally mirrored into the global recorder via
//! the gated [`xring_obs::record_hist`]/[`counter`](xring_obs::counter)
//! calls, so `xring serve --trace` captures `serve.*` series alongside
//! the engine's exactly like every other subcommand.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use xring_core::PhaseId;
use xring_engine::DesignCache;
use xring_obs::{GaugeRecord, Histogram, Trace};

/// Counter and histogram names, in one place so the daemon, the tests
/// and the bench load-test agree on spellings.
pub mod names {
    /// End-to-end request wall time, admission to response, µs.
    pub const REQUEST_WALL_US: &str = "serve.request_wall_us";
    /// Time spent queued before a handler picked the request up, µs.
    pub const QUEUE_WAIT_US: &str = "serve.queue_wait_us";
    /// Requests admitted (everything that got past parsing).
    pub const REQUESTS: &str = "serve.requests";
    /// Responses with a 2xx status.
    pub const OK: &str = "serve.ok";
    /// Responses with a 4xx status (shed responses not included).
    pub const CLIENT_ERRORS: &str = "serve.client_errors";
    /// Responses with a 5xx status.
    pub const SERVER_ERRORS: &str = "serve.server_errors";
    /// Requests shed by admission control (429).
    pub const SHED: &str = "serve.shed";
    /// Requests that exhausted their deadline (exact synthesis only;
    /// degraded completions count under [`DEGRADED`] instead).
    pub const DEADLINE_EXCEEDED: &str = "serve.deadline_exceeded";
    /// Successful responses produced below [`DegradationLevel::Exact`]
    /// (i.e. the fallback chain ran).
    ///
    /// [`DegradationLevel::Exact`]: xring_core::DegradationLevel::Exact
    pub const DEGRADED: &str = "serve.degraded";
    /// Successful responses whose design was synthesized with spares,
    /// i.e. released only after the exhaustive single-device-fault
    /// survivability proof.
    pub const SPARED: &str = "serve.spared";
    /// Requests currently inside a handler (gauge).
    pub const INFLIGHT: &str = "serve.inflight";
    /// Requests currently parked in the accept queue (gauge).
    pub const QUEUED: &str = "serve.queued";
    /// `/synth` responses that replayed at least one pipeline phase
    /// from the cache's artifact store (incremental re-synthesis).
    pub const INCREMENTAL: &str = "serve.incremental";
    /// Handler bodies that panicked and were converted to a 500 by the
    /// `catch_unwind` wrapper (the pool thread survives).
    pub const HANDLER_PANICS: &str = "serve.handler_panics";
    /// Availability SLO: requests answered without a server-side
    /// failure (not 5xx, not shed).
    pub const SLO_AVAILABILITY_GOOD: &str = "serve.slo.availability_good";
    /// Availability SLO: requests lost to a 5xx or shed by admission.
    pub const SLO_AVAILABILITY_BAD: &str = "serve.slo.availability_bad";
    /// Latency SLO: successful responses within the latency target.
    pub const SLO_LATENCY_GOOD: &str = "serve.slo.latency_good";
    /// Latency SLO: successful responses over the latency target.
    pub const SLO_LATENCY_BAD: &str = "serve.slo.latency_bad";
}

/// The daemon's live instrument set. One instance per
/// [`Server`](crate::Server), shared by reference across the accept
/// loop and every handler thread; all mutation is relaxed-atomic.
#[derive(Debug)]
pub struct ServeMetrics {
    /// End-to-end request wall time (admission to response written).
    pub request_wall: Histogram,
    /// Queue wait (accepted to handler pickup).
    pub queue_wait: Histogram,
    requests: AtomicU64,
    ok: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    degraded: AtomicU64,
    spared: AtomicU64,
    incremental: AtomicU64,
    handler_panics: AtomicU64,
    inflight: AtomicU64,
    queued: AtomicU64,
    started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// A fresh, empty instrument set.
    pub fn new() -> Self {
        ServeMetrics {
            request_wall: Histogram::new(),
            queue_wait: Histogram::new(),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            spared: AtomicU64::new(0),
            incremental: AtomicU64::new(0),
            handler_panics: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Seconds since this instrument set (and so the daemon) started.
    pub fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Records one admitted request's end-to-end wall time and mirrors
    /// it into the global recorder (a no-op unless `--trace` is live).
    pub fn record_request_wall(&self, us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.request_wall.record(us);
        xring_obs::record_hist(names::REQUEST_WALL_US, us);
        xring_obs::counter(names::REQUESTS, 1);
    }

    /// Records one request's queue wait.
    pub fn record_queue_wait(&self, us: u64) {
        self.queue_wait.record(us);
        xring_obs::record_hist(names::QUEUE_WAIT_US, us);
    }

    /// Classifies a finished response by status code.
    pub fn record_status(&self, status: u16) {
        let slot = match status {
            200..=299 => &self.ok,
            429 => &self.shed,
            400..=499 => &self.client_errors,
            _ => &self.server_errors,
        };
        slot.fetch_add(1, Ordering::Relaxed);
        let name = match status {
            200..=299 => names::OK,
            429 => names::SHED,
            400..=499 => names::CLIENT_ERRORS,
            _ => names::SERVER_ERRORS,
        };
        xring_obs::counter(name, 1);
    }

    /// Counts a deadline-exceeded outcome.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        xring_obs::counter(names::DEADLINE_EXCEEDED, 1);
    }

    /// Counts a response produced by the degradation fallback chain.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        xring_obs::counter(names::DEGRADED, 1);
    }

    /// Counts a successful response backed by a survivability-proven
    /// (spared) design.
    pub fn record_spared(&self) {
        self.spared.fetch_add(1, Ordering::Relaxed);
        xring_obs::counter(names::SPARED, 1);
    }

    /// Counts a response that replayed at least one pipeline phase
    /// from cached artifacts instead of recomputing it.
    pub fn record_incremental(&self) {
        self.incremental.fetch_add(1, Ordering::Relaxed);
        xring_obs::counter(names::INCREMENTAL, 1);
    }

    /// Counts a handler body that panicked and was absorbed by the
    /// `catch_unwind` wrapper.
    pub fn record_handler_panic(&self) {
        self.handler_panics.fetch_add(1, Ordering::Relaxed);
        xring_obs::counter(names::HANDLER_PANICS, 1);
    }

    /// Total handler panics absorbed.
    pub fn handler_panics(&self) -> u64 {
        self.handler_panics.load(Ordering::Relaxed)
    }

    /// Handler entry/exit bracket; returns the inflight count *after*
    /// the adjustment.
    pub fn adjust_inflight(&self, delta: i64) -> u64 {
        adjust(&self.inflight, delta)
    }

    /// Accept-queue entry/exit bracket.
    pub fn adjust_queued(&self, delta: i64) -> u64 {
        adjust(&self.queued, delta)
    }

    /// Requests currently inside a handler.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Requests currently parked in the accept queue.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Total admitted requests.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total shed (429) responses.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Total 2xx responses.
    pub fn ok(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// Total responses produced below [`DegradationLevel::Exact`]
    /// (the load-shedding fallback chain fired).
    ///
    /// [`DegradationLevel::Exact`]: xring_core::DegradationLevel::Exact
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Total 2xx responses whose design carried spares and so passed
    /// the exhaustive single-fault survivability proof.
    pub fn spared(&self) -> u64 {
        self.spared.load(Ordering::Relaxed)
    }

    /// Total jobs that failed outright on an expired deadline.
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Total `/synth` responses that replayed at least one pipeline
    /// phase from cached artifacts.
    pub fn incremental(&self) -> u64 {
        self.incremental.load(Ordering::Relaxed)
    }

    /// Assembles a point-in-time [`Trace`] of the daemon: serve
    /// counters/gauges/histograms plus the shared cache's counters and
    /// byte occupancy. Feeding the result to [`Trace::write_prometheus`]
    /// is the `/metrics` endpoint; the same value also backs the bench
    /// load-test's percentile extraction.
    pub fn to_trace(&self, cache: &DesignCache) -> Trace {
        let at_ns = self.started.elapsed().as_nanos() as u64;
        let gauge = |name: &str, value: f64| GaugeRecord {
            name: name.to_owned(),
            value,
            thread: 0,
            at_ns,
        };
        // Zero-valued counters stay in the exposition: scrapers want
        // stable series, and "shed 0" is information.
        let mut totals = vec![
            (
                names::REQUESTS.to_owned(),
                self.requests.load(Ordering::Relaxed),
            ),
            (names::OK.to_owned(), self.ok.load(Ordering::Relaxed)),
            (
                names::CLIENT_ERRORS.to_owned(),
                self.client_errors.load(Ordering::Relaxed),
            ),
            (
                names::SERVER_ERRORS.to_owned(),
                self.server_errors.load(Ordering::Relaxed),
            ),
            (names::SHED.to_owned(), self.shed.load(Ordering::Relaxed)),
            (
                names::DEADLINE_EXCEEDED.to_owned(),
                self.deadline_exceeded.load(Ordering::Relaxed),
            ),
            (
                names::DEGRADED.to_owned(),
                self.degraded.load(Ordering::Relaxed),
            ),
            (
                names::SPARED.to_owned(),
                self.spared.load(Ordering::Relaxed),
            ),
            (
                names::INCREMENTAL.to_owned(),
                self.incremental.load(Ordering::Relaxed),
            ),
            (
                names::HANDLER_PANICS.to_owned(),
                self.handler_panics.load(Ordering::Relaxed),
            ),
            ("cache.hits".to_owned(), cache.hits() as u64),
            ("cache.misses".to_owned(), cache.misses() as u64),
            ("cache.evictions".to_owned(), cache.evictions() as u64),
            (
                "cache.lru_evictions".to_owned(),
                cache.lru_evictions() as u64,
            ),
            ("cache.evict_bytes".to_owned(), cache.evicted_bytes() as u64),
            (
                "cache.artifact_hits".to_owned(),
                cache.artifact_hits() as u64,
            ),
            (
                "cache.artifact_misses".to_owned(),
                cache.artifact_misses() as u64,
            ),
        ];
        // One stable hit/miss series per pipeline phase, so operators
        // can see *which* phases incremental edits are replaying.
        for phase in PhaseId::ALL {
            totals.push((
                format!("cache.phase_hits.{}", phase.as_str()),
                cache.phase_hits(phase) as u64,
            ));
            totals.push((
                format!("cache.phase_misses.{}", phase.as_str()),
                cache.phase_misses(phase) as u64,
            ));
        }
        let hists = [
            self.request_wall.snapshot(names::REQUEST_WALL_US),
            self.queue_wait.snapshot(names::QUEUE_WAIT_US),
        ]
        .into_iter()
        .filter(|h| h.count > 0)
        .collect();
        Trace {
            spans: Vec::new(),
            gauges: vec![
                gauge(
                    names::INFLIGHT,
                    self.inflight.load(Ordering::Relaxed) as f64,
                ),
                gauge(names::QUEUED, self.queued.load(Ordering::Relaxed) as f64),
                gauge("cache.bytes", cache.bytes() as f64),
            ],
            totals,
            hists,
        }
    }
}

/// Configuration of the daemon's service-level objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Objective target in parts-per-million of good events (990_000 =
    /// 99%). Shared by the availability and latency objectives.
    pub target_ppm: u32,
    /// Latency target: a successful response slower than this counts
    /// against the latency objective (and is "slow" to the flight
    /// recorder's tail-sampler).
    pub latency_target: Duration,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target_ppm: 990_000,
            latency_target: Duration::from_secs(1),
        }
    }
}

/// Per-minute good/bad tallies for the rolling burn-rate windows.
#[derive(Debug, Default, Clone, Copy)]
struct SloBucket {
    minute: u64,
    avail_good: u64,
    avail_bad: u64,
    lat_good: u64,
    lat_bad: u64,
}

/// Good/bad SLO event accounting with rolling 5-minute and 1-hour
/// burn-rate windows.
///
/// Two objectives share one target fraction:
///
/// * **availability** — a request is good unless it was shed (429) or
///   failed server-side (5xx);
/// * **latency** — a *successful* (2xx) response is good iff its wall
///   time is within [`SloConfig::latency_target`]; failures are the
///   availability objective's problem and do not double-count here.
///
/// A burn rate is the bad-event fraction over a window divided by the
/// error budget (`1 - target`): 1.0 means the budget is being consumed
/// exactly at the sustainable rate, 14.4 over 1h is the classic
/// page-now threshold for a 99.9% / 30-day objective.
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    avail_good: AtomicU64,
    avail_bad: AtomicU64,
    lat_good: AtomicU64,
    lat_bad: AtomicU64,
    buckets: Mutex<VecDeque<SloBucket>>,
    started: Instant,
}

impl SloTracker {
    /// Retained minute-buckets: enough for the 1-hour window.
    const WINDOW_MINUTES: u64 = 60;

    /// A tracker with the given objectives and empty counters.
    pub fn new(config: SloConfig) -> Self {
        SloTracker {
            config,
            avail_good: AtomicU64::new(0),
            avail_bad: AtomicU64::new(0),
            lat_good: AtomicU64::new(0),
            lat_bad: AtomicU64::new(0),
            buckets: Mutex::new(VecDeque::new()),
            started: Instant::now(),
        }
    }

    /// The configured objectives.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Classifies one finished request. `shed` marks a 429 from
    /// admission control (bad for availability even though it is a 4xx).
    pub fn record(&self, status: u16, wall_us: u64, shed: bool) {
        let minute = self.started.elapsed().as_secs() / 60;
        self.record_at(minute, status, wall_us, shed);
    }

    fn record_at(&self, minute: u64, status: u16, wall_us: u64, shed: bool) {
        let avail_bad = shed || status >= 500;
        let success = (200..300).contains(&status);
        let lat_bad = success && wall_us > self.config.latency_target.as_micros() as u64;
        match avail_bad {
            true => &self.avail_bad,
            false => &self.avail_good,
        }
        .fetch_add(1, Ordering::Relaxed);
        if success {
            match lat_bad {
                true => &self.lat_bad,
                false => &self.lat_good,
            }
            .fetch_add(1, Ordering::Relaxed);
        }
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if buckets.back().map(|b| b.minute) != Some(minute) {
            buckets.push_back(SloBucket {
                minute,
                ..SloBucket::default()
            });
            while buckets.len() as u64 > Self::WINDOW_MINUTES {
                buckets.pop_front();
            }
        }
        let bucket = buckets.back_mut().expect("bucket just ensured");
        if avail_bad {
            bucket.avail_bad += 1;
        } else {
            bucket.avail_good += 1;
        }
        if success {
            if lat_bad {
                bucket.lat_bad += 1;
            } else {
                bucket.lat_good += 1;
            }
        }
    }

    /// `(availability, latency)` burn rates over the trailing `window`
    /// minutes; 0.0 with no events in the window.
    pub fn burn_rates(&self, window: u64) -> (f64, f64) {
        let minute = self.started.elapsed().as_secs() / 60;
        self.burn_rates_at(minute, window)
    }

    fn burn_rates_at(&self, now_minute: u64, window: u64) -> (f64, f64) {
        let oldest = now_minute.saturating_sub(window.saturating_sub(1));
        let buckets = self
            .buckets
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut sum = SloBucket::default();
        for b in buckets.iter().filter(|b| b.minute >= oldest) {
            sum.avail_good += b.avail_good;
            sum.avail_bad += b.avail_bad;
            sum.lat_good += b.lat_good;
            sum.lat_bad += b.lat_bad;
        }
        let budget = 1.0 - f64::from(self.config.target_ppm) / 1_000_000.0;
        let burn = |good: u64, bad: u64| {
            let total = good + bad;
            if total == 0 || budget <= 0.0 {
                return 0.0;
            }
            (bad as f64 / total as f64) / budget
        };
        (
            burn(sum.avail_good, sum.avail_bad),
            burn(sum.lat_good, sum.lat_bad),
        )
    }

    /// Appends the `serve.slo.*` series — lifetime good/bad counters,
    /// the configured targets, and the 5m/1h burn-rate gauges — to a
    /// `/metrics` trace.
    pub fn append_to(&self, trace: &mut Trace) {
        trace.totals.extend([
            (
                names::SLO_AVAILABILITY_GOOD.to_owned(),
                self.avail_good.load(Ordering::Relaxed),
            ),
            (
                names::SLO_AVAILABILITY_BAD.to_owned(),
                self.avail_bad.load(Ordering::Relaxed),
            ),
            (
                names::SLO_LATENCY_GOOD.to_owned(),
                self.lat_good.load(Ordering::Relaxed),
            ),
            (
                names::SLO_LATENCY_BAD.to_owned(),
                self.lat_bad.load(Ordering::Relaxed),
            ),
        ]);
        let at_ns = self.started.elapsed().as_nanos() as u64;
        let gauge = |name: &str, value: f64| GaugeRecord {
            name: name.to_owned(),
            value,
            thread: 0,
            at_ns,
        };
        let (avail_5m, lat_5m) = self.burn_rates(5);
        let (avail_1h, lat_1h) = self.burn_rates(60);
        trace.gauges.extend([
            gauge("serve.slo.target_ppm", f64::from(self.config.target_ppm)),
            gauge(
                "serve.slo.latency_target_us",
                self.config.latency_target.as_micros() as f64,
            ),
            gauge("serve.slo.availability_burn_rate_5m", avail_5m),
            gauge("serve.slo.availability_burn_rate_1h", avail_1h),
            gauge("serve.slo.latency_burn_rate_5m", lat_5m),
            gauge("serve.slo.latency_burn_rate_1h", lat_1h),
        ]);
    }
}

fn adjust(slot: &AtomicU64, delta: i64) -> u64 {
    if delta >= 0 {
        slot.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
    } else {
        slot.fetch_sub((-delta) as u64, Ordering::Relaxed)
            .saturating_sub((-delta) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_bracket_and_report() {
        let m = ServeMetrics::new();
        assert_eq!(m.adjust_inflight(1), 1);
        assert_eq!(m.adjust_inflight(1), 2);
        assert_eq!(m.adjust_inflight(-1), 1);
        assert_eq!(m.inflight(), 1);
        assert_eq!(m.adjust_queued(1), 1);
        assert_eq!(m.adjust_queued(-1), 0);
    }

    #[test]
    fn trace_snapshot_renders_as_valid_prometheus() {
        let m = ServeMetrics::new();
        m.record_request_wall(120);
        m.record_request_wall(3_400);
        m.record_queue_wait(15);
        m.record_status(200);
        m.record_status(429);
        m.record_status(400);
        m.record_status(500);
        m.record_degraded();
        m.record_spared();
        m.record_incremental();
        m.adjust_inflight(1);

        let cache = DesignCache::with_byte_budget(1 << 20);
        let trace = m.to_trace(&cache);
        let mut out = Vec::new();
        trace.write_prometheus(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        xring_obs::validate_exposition(&text).expect("valid exposition");
        assert!(text.contains("xring_serve_requests_total 2"));
        assert!(text.contains("xring_serve_ok_total 1"));
        assert!(text.contains("xring_serve_shed_total 1"));
        assert!(text.contains("xring_serve_client_errors_total 1"));
        assert!(text.contains("xring_serve_server_errors_total 1"));
        assert!(text.contains("xring_serve_degraded_total 1"));
        assert!(text.contains("xring_serve_spared_total 1"));
        assert!(text.contains("xring_serve_incremental_total 1"));
        assert!(text.contains("xring_cache_artifact_hits_total 0"));
        assert!(text.contains("xring_cache_artifact_misses_total 0"));
        assert!(text.contains("xring_cache_phase_hits_ring_milp_total 0"));
        assert!(text.contains("xring_cache_phase_misses_pdn_total 0"));
        assert!(text.contains("xring_serve_inflight 1"));
        assert!(text.contains("xring_serve_request_wall_us_bucket"));
        assert!(text.contains("xring_serve_request_wall_us_count 2"));
        assert!(text.contains("xring_cache_bytes 0"));
    }

    #[test]
    fn slo_classifies_availability_and_latency() {
        let slo = SloTracker::new(SloConfig {
            target_ppm: 990_000,
            latency_target: Duration::from_millis(100),
        });
        slo.record_at(0, 200, 50_000, false); // good, fast
        slo.record_at(0, 200, 500_000, false); // good avail, slow
        slo.record_at(0, 422, 10, false); // client error: avail good, no latency event
        slo.record_at(0, 500, 10, false); // avail bad
        slo.record_at(0, 429, 0, true); // shed: avail bad
        let (avail, lat) = slo.burn_rates_at(0, 5);
        // Availability: 2 bad of 5 → 0.4 bad fraction / 0.01 budget.
        assert!((avail - 40.0).abs() < 1e-9, "avail burn {avail}");
        // Latency: 1 bad of 2 successes → 0.5 / 0.01.
        assert!((lat - 50.0).abs() < 1e-9, "latency burn {lat}");
    }

    #[test]
    fn slo_windows_age_out_old_minutes() {
        let slo = SloTracker::new(SloConfig::default());
        slo.record_at(0, 500, 10, false); // bad, at minute 0
        for minute in 10..15 {
            slo.record_at(minute, 200, 10, false);
        }
        let (avail_5m, _) = slo.burn_rates_at(14, 5);
        assert_eq!(avail_5m, 0.0, "minute-0 failure left the 5m window");
        let (avail_1h, _) = slo.burn_rates_at(14, 60);
        assert!(avail_1h > 0.0, "still inside the 1h window");
    }

    #[test]
    fn slo_series_render_as_valid_prometheus() {
        let m = ServeMetrics::new();
        m.record_status(200);
        m.record_handler_panic();
        let slo = SloTracker::new(SloConfig::default());
        slo.record(200, 10, false);
        slo.record(503, 10, false);
        let cache = DesignCache::new();
        let mut trace = m.to_trace(&cache);
        slo.append_to(&mut trace);
        let mut out = Vec::new();
        trace.write_prometheus(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        xring_obs::validate_exposition(&text).expect("valid exposition");
        assert!(text.contains("xring_serve_slo_availability_good_total 1"));
        assert!(text.contains("xring_serve_slo_availability_bad_total 1"));
        assert!(text.contains("xring_serve_slo_latency_good_total 1"));
        assert!(text.contains("xring_serve_slo_latency_bad_total 0"));
        assert!(text.contains("xring_serve_slo_availability_burn_rate_5m"));
        assert!(text.contains("xring_serve_slo_latency_burn_rate_1h"));
        assert!(text.contains("xring_serve_slo_target_ppm 990000"));
        assert!(text.contains("xring_serve_handler_panics_total 1"));
    }

    #[test]
    fn empty_histograms_are_omitted_from_the_trace() {
        let m = ServeMetrics::new();
        let cache = DesignCache::new();
        let trace = m.to_trace(&cache);
        assert!(trace.hists.is_empty());
        // Counters and gauges still expose stable series at zero.
        assert!(trace
            .totals
            .iter()
            .any(|(n, v)| n == "serve.shed" && *v == 0));
    }
}
