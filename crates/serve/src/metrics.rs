//! Live daemon metrics.
//!
//! The global xring-obs recorder is drain-on-finish — right for batch
//! runs, wrong for a daemon whose `/metrics` endpoint must answer at any
//! moment without destroying state. So the daemon owns *always-on local*
//! instruments (the same lock-free [`Histogram`] type plus plain
//! atomics) and renders a scrape by assembling a point-in-time
//! [`Trace`] value and reusing [`Trace::write_prometheus`] — one
//! exposition renderer in the workspace, two lifecycles.
//!
//! Every sample is additionally mirrored into the global recorder via
//! the gated [`xring_obs::record_hist`]/[`counter`](xring_obs::counter)
//! calls, so `xring serve --trace` captures `serve.*` series alongside
//! the engine's exactly like every other subcommand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use xring_core::PhaseId;
use xring_engine::DesignCache;
use xring_obs::{GaugeRecord, Histogram, Trace};

/// Counter and histogram names, in one place so the daemon, the tests
/// and the bench load-test agree on spellings.
pub mod names {
    /// End-to-end request wall time, admission to response, µs.
    pub const REQUEST_WALL_US: &str = "serve.request_wall_us";
    /// Time spent queued before a handler picked the request up, µs.
    pub const QUEUE_WAIT_US: &str = "serve.queue_wait_us";
    /// Requests admitted (everything that got past parsing).
    pub const REQUESTS: &str = "serve.requests";
    /// Responses with a 2xx status.
    pub const OK: &str = "serve.ok";
    /// Responses with a 4xx status (shed responses not included).
    pub const CLIENT_ERRORS: &str = "serve.client_errors";
    /// Responses with a 5xx status.
    pub const SERVER_ERRORS: &str = "serve.server_errors";
    /// Requests shed by admission control (429).
    pub const SHED: &str = "serve.shed";
    /// Requests that exhausted their deadline (exact synthesis only;
    /// degraded completions count under [`DEGRADED`] instead).
    pub const DEADLINE_EXCEEDED: &str = "serve.deadline_exceeded";
    /// Successful responses produced below [`DegradationLevel::Exact`]
    /// (i.e. the fallback chain ran).
    ///
    /// [`DegradationLevel::Exact`]: xring_core::DegradationLevel::Exact
    pub const DEGRADED: &str = "serve.degraded";
    /// Successful responses whose design was synthesized with spares,
    /// i.e. released only after the exhaustive single-device-fault
    /// survivability proof.
    pub const SPARED: &str = "serve.spared";
    /// Requests currently inside a handler (gauge).
    pub const INFLIGHT: &str = "serve.inflight";
    /// Requests currently parked in the accept queue (gauge).
    pub const QUEUED: &str = "serve.queued";
    /// `/synth` responses that replayed at least one pipeline phase
    /// from the cache's artifact store (incremental re-synthesis).
    pub const INCREMENTAL: &str = "serve.incremental";
}

/// The daemon's live instrument set. One instance per
/// [`Server`](crate::Server), shared by reference across the accept
/// loop and every handler thread; all mutation is relaxed-atomic.
#[derive(Debug)]
pub struct ServeMetrics {
    /// End-to-end request wall time (admission to response written).
    pub request_wall: Histogram,
    /// Queue wait (accepted to handler pickup).
    pub queue_wait: Histogram,
    requests: AtomicU64,
    ok: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    degraded: AtomicU64,
    spared: AtomicU64,
    incremental: AtomicU64,
    inflight: AtomicU64,
    queued: AtomicU64,
    started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// A fresh, empty instrument set.
    pub fn new() -> Self {
        ServeMetrics {
            request_wall: Histogram::new(),
            queue_wait: Histogram::new(),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            spared: AtomicU64::new(0),
            incremental: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Records one admitted request's end-to-end wall time and mirrors
    /// it into the global recorder (a no-op unless `--trace` is live).
    pub fn record_request_wall(&self, us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.request_wall.record(us);
        xring_obs::record_hist(names::REQUEST_WALL_US, us);
        xring_obs::counter(names::REQUESTS, 1);
    }

    /// Records one request's queue wait.
    pub fn record_queue_wait(&self, us: u64) {
        self.queue_wait.record(us);
        xring_obs::record_hist(names::QUEUE_WAIT_US, us);
    }

    /// Classifies a finished response by status code.
    pub fn record_status(&self, status: u16) {
        let slot = match status {
            200..=299 => &self.ok,
            429 => &self.shed,
            400..=499 => &self.client_errors,
            _ => &self.server_errors,
        };
        slot.fetch_add(1, Ordering::Relaxed);
        let name = match status {
            200..=299 => names::OK,
            429 => names::SHED,
            400..=499 => names::CLIENT_ERRORS,
            _ => names::SERVER_ERRORS,
        };
        xring_obs::counter(name, 1);
    }

    /// Counts a deadline-exceeded outcome.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        xring_obs::counter(names::DEADLINE_EXCEEDED, 1);
    }

    /// Counts a response produced by the degradation fallback chain.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        xring_obs::counter(names::DEGRADED, 1);
    }

    /// Counts a successful response backed by a survivability-proven
    /// (spared) design.
    pub fn record_spared(&self) {
        self.spared.fetch_add(1, Ordering::Relaxed);
        xring_obs::counter(names::SPARED, 1);
    }

    /// Counts a response that replayed at least one pipeline phase
    /// from cached artifacts instead of recomputing it.
    pub fn record_incremental(&self) {
        self.incremental.fetch_add(1, Ordering::Relaxed);
        xring_obs::counter(names::INCREMENTAL, 1);
    }

    /// Handler entry/exit bracket; returns the inflight count *after*
    /// the adjustment.
    pub fn adjust_inflight(&self, delta: i64) -> u64 {
        adjust(&self.inflight, delta)
    }

    /// Accept-queue entry/exit bracket.
    pub fn adjust_queued(&self, delta: i64) -> u64 {
        adjust(&self.queued, delta)
    }

    /// Requests currently inside a handler.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Requests currently parked in the accept queue.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Total admitted requests.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total shed (429) responses.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Total 2xx responses.
    pub fn ok(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// Total responses produced below [`DegradationLevel::Exact`]
    /// (the load-shedding fallback chain fired).
    ///
    /// [`DegradationLevel::Exact`]: xring_core::DegradationLevel::Exact
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Total 2xx responses whose design carried spares and so passed
    /// the exhaustive single-fault survivability proof.
    pub fn spared(&self) -> u64 {
        self.spared.load(Ordering::Relaxed)
    }

    /// Total jobs that failed outright on an expired deadline.
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Total `/synth` responses that replayed at least one pipeline
    /// phase from cached artifacts.
    pub fn incremental(&self) -> u64 {
        self.incremental.load(Ordering::Relaxed)
    }

    /// Assembles a point-in-time [`Trace`] of the daemon: serve
    /// counters/gauges/histograms plus the shared cache's counters and
    /// byte occupancy. Feeding the result to [`Trace::write_prometheus`]
    /// is the `/metrics` endpoint; the same value also backs the bench
    /// load-test's percentile extraction.
    pub fn to_trace(&self, cache: &DesignCache) -> Trace {
        let at_ns = self.started.elapsed().as_nanos() as u64;
        let gauge = |name: &str, value: f64| GaugeRecord {
            name: name.to_owned(),
            value,
            thread: 0,
            at_ns,
        };
        // Zero-valued counters stay in the exposition: scrapers want
        // stable series, and "shed 0" is information.
        let mut totals = vec![
            (
                names::REQUESTS.to_owned(),
                self.requests.load(Ordering::Relaxed),
            ),
            (names::OK.to_owned(), self.ok.load(Ordering::Relaxed)),
            (
                names::CLIENT_ERRORS.to_owned(),
                self.client_errors.load(Ordering::Relaxed),
            ),
            (
                names::SERVER_ERRORS.to_owned(),
                self.server_errors.load(Ordering::Relaxed),
            ),
            (names::SHED.to_owned(), self.shed.load(Ordering::Relaxed)),
            (
                names::DEADLINE_EXCEEDED.to_owned(),
                self.deadline_exceeded.load(Ordering::Relaxed),
            ),
            (
                names::DEGRADED.to_owned(),
                self.degraded.load(Ordering::Relaxed),
            ),
            (
                names::SPARED.to_owned(),
                self.spared.load(Ordering::Relaxed),
            ),
            (
                names::INCREMENTAL.to_owned(),
                self.incremental.load(Ordering::Relaxed),
            ),
            ("cache.hits".to_owned(), cache.hits() as u64),
            ("cache.misses".to_owned(), cache.misses() as u64),
            ("cache.evictions".to_owned(), cache.evictions() as u64),
            (
                "cache.lru_evictions".to_owned(),
                cache.lru_evictions() as u64,
            ),
            ("cache.evict_bytes".to_owned(), cache.evicted_bytes() as u64),
            (
                "cache.artifact_hits".to_owned(),
                cache.artifact_hits() as u64,
            ),
            (
                "cache.artifact_misses".to_owned(),
                cache.artifact_misses() as u64,
            ),
        ];
        // One stable hit/miss series per pipeline phase, so operators
        // can see *which* phases incremental edits are replaying.
        for phase in PhaseId::ALL {
            totals.push((
                format!("cache.phase_hits.{}", phase.as_str()),
                cache.phase_hits(phase) as u64,
            ));
            totals.push((
                format!("cache.phase_misses.{}", phase.as_str()),
                cache.phase_misses(phase) as u64,
            ));
        }
        let hists = [
            self.request_wall.snapshot(names::REQUEST_WALL_US),
            self.queue_wait.snapshot(names::QUEUE_WAIT_US),
        ]
        .into_iter()
        .filter(|h| h.count > 0)
        .collect();
        Trace {
            spans: Vec::new(),
            gauges: vec![
                gauge(
                    names::INFLIGHT,
                    self.inflight.load(Ordering::Relaxed) as f64,
                ),
                gauge(names::QUEUED, self.queued.load(Ordering::Relaxed) as f64),
                gauge("cache.bytes", cache.bytes() as f64),
            ],
            totals,
            hists,
        }
    }
}

fn adjust(slot: &AtomicU64, delta: i64) -> u64 {
    if delta >= 0 {
        slot.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
    } else {
        slot.fetch_sub((-delta) as u64, Ordering::Relaxed)
            .saturating_sub((-delta) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_bracket_and_report() {
        let m = ServeMetrics::new();
        assert_eq!(m.adjust_inflight(1), 1);
        assert_eq!(m.adjust_inflight(1), 2);
        assert_eq!(m.adjust_inflight(-1), 1);
        assert_eq!(m.inflight(), 1);
        assert_eq!(m.adjust_queued(1), 1);
        assert_eq!(m.adjust_queued(-1), 0);
    }

    #[test]
    fn trace_snapshot_renders_as_valid_prometheus() {
        let m = ServeMetrics::new();
        m.record_request_wall(120);
        m.record_request_wall(3_400);
        m.record_queue_wait(15);
        m.record_status(200);
        m.record_status(429);
        m.record_status(400);
        m.record_status(500);
        m.record_degraded();
        m.record_spared();
        m.record_incremental();
        m.adjust_inflight(1);

        let cache = DesignCache::with_byte_budget(1 << 20);
        let trace = m.to_trace(&cache);
        let mut out = Vec::new();
        trace.write_prometheus(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        xring_obs::validate_exposition(&text).expect("valid exposition");
        assert!(text.contains("xring_serve_requests_total 2"));
        assert!(text.contains("xring_serve_ok_total 1"));
        assert!(text.contains("xring_serve_shed_total 1"));
        assert!(text.contains("xring_serve_client_errors_total 1"));
        assert!(text.contains("xring_serve_server_errors_total 1"));
        assert!(text.contains("xring_serve_degraded_total 1"));
        assert!(text.contains("xring_serve_spared_total 1"));
        assert!(text.contains("xring_serve_incremental_total 1"));
        assert!(text.contains("xring_cache_artifact_hits_total 0"));
        assert!(text.contains("xring_cache_artifact_misses_total 0"));
        assert!(text.contains("xring_cache_phase_hits_ring_milp_total 0"));
        assert!(text.contains("xring_cache_phase_misses_pdn_total 0"));
        assert!(text.contains("xring_serve_inflight 1"));
        assert!(text.contains("xring_serve_request_wall_us_bucket"));
        assert!(text.contains("xring_serve_request_wall_us_count 2"));
        assert!(text.contains("xring_cache_bytes 0"));
    }

    #[test]
    fn empty_histograms_are_omitted_from_the_trace() {
        let m = ServeMetrics::new();
        let cache = DesignCache::new();
        let trace = m.to_trace(&cache);
        assert!(trace.hists.is_empty());
        // Counters and gauges still expose stable series at zero.
        assert!(trace
            .totals
            .iter()
            .any(|(n, v)| n == "serve.shed" && *v == 0));
    }
}
