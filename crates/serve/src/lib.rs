//! Synthesis as a service: a long-running daemon over the
//! [`xring-engine`](xring_engine) executor.
//!
//! Batch synthesis answers "synthesize these N routers once"; this crate
//! answers "keep synthesizing whatever arrives, indefinitely, under
//! load". The daemon speaks JSON over HTTP/1.1 on a
//! [`std::net::TcpListener`] — std-only like the rest of the workspace,
//! with a deliberately small hand-rolled HTTP layer ([`http`]).
//!
//! # Endpoints
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `POST /synth` | One network + options → design report, provenance, audit verdict |
//! | `POST /batch` | Multiple specs, run through the engine's worker pool |
//! | `GET /metrics` | Live Prometheus text (format 0.0.4): `serve.*`, `cache.*`, SLO burn rates |
//! | `GET /healthz` | Liveness + inflight/queued/shed counts, uptime, version |
//! | `GET /debug/requests` | Flight recorder: recent request records, most recent first |
//! | `GET /debug/requests/<id>` | One record plus its retained span trace, if tail-sampled |
//! | `GET /debug/slow` | Every tail-sampled (slow/degraded/shed/errored) request with its trace |
//! | `POST /shutdown` | Graceful drain: stop accepting, finish admitted work |
//!
//! Every response carries an `x-request-id` header (and JSON responses a
//! `"request_id"` field); inbound `traceparent` / `x-request-id` headers
//! are honored, so daemon traces join a caller's distributed trace.
//!
//! # Operational semantics
//!
//! * **Admission control** ([`server`]): at most `max_inflight` requests
//!   execute concurrently and at most `queue_depth` wait; beyond that the
//!   daemon sheds with an immediate 429 rather than queueing unboundedly.
//! * **Deadlines as a load-shedding knob**: every request gets a
//!   deadline (server default, per-request override) threaded into the
//!   MILP branch-and-bound; with `--degradation allow` an expired budget
//!   degrades through the fallback chain instead of failing, and the
//!   response reports the [`DegradationLevel`](xring_core::DegradationLevel)
//!   it was produced at.
//! * **Bounded shared cache**: one content-addressed
//!   [`DesignCache`](xring_engine::DesignCache) with a byte budget and
//!   LRU eviction serves all requests — repeated specs cost a lookup.
//! * **Incremental re-synthesis**: `/synth` runs through
//!   [`Engine::resynthesize`](xring_engine::Engine::resynthesize),
//!   diffing each request's phase keys against the previous one; an
//!   edited spec replays its unchanged pipeline phases from cached
//!   artifacts and recomputes only the dirty suffix. `/metrics` exposes
//!   `xring_serve_incremental_total` and per-phase
//!   `xring_cache_phase_{hits,misses}_*` counters.
//! * **Live metrics** ([`metrics`]): always-on lock-free histograms
//!   rendered through the same Prometheus writer as `--metrics-out`,
//!   plus SLO good/bad counters and 5m/1h burn-rate gauges
//!   (`xring_serve_slo_*`).
//! * **Flight recorder** ([`flight`]): a bounded ring of recent request
//!   records and a tail-sampler that retains full span traces for
//!   slow, degraded, shed, and errored requests only — served under
//!   `/debug/*` and dumped to a postmortem file on drain or panic.
//!
//! ```no_run
//! use xring_serve::{client, Server, ServeConfig};
//!
//! let mut server = Server::start(ServeConfig::default())?;
//! let (status, body) = client::http_request(
//!     server.addr(),
//!     "POST",
//!     "/synth",
//!     r#"{"net": {"named": "proton_8"}}"#,
//! )?;
//! assert_eq!(status, 200);
//! assert!(body.contains("\"degradation\":\"exact\""));
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod flight;
pub mod http;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use flight::{FlightRecorder, RequestRecord, TailSampler};
pub use metrics::{ServeMetrics, SloConfig, SloTracker};
pub use protocol::{ProtocolError, RequestDefaults};
pub use server::{ServeConfig, Server};
