//! A minimal JSON reader for request bodies.
//!
//! The workspace already has two JSON *writers* (the JSONL event sink
//! and the bench reports), both built on [`xring_obs::json_escape`];
//! responses here reuse that escaper rather than adding a third writer.
//! What no crate had yet is a *reader* — requests arrive over the wire,
//! so the daemon must parse untrusted text. This is a strict
//! recursive-descent parser over the JSON grammar (RFC 8259): no trailing
//! commas, no comments, `\uXXXX` escapes decoded (surrogate pairs
//! included), a depth limit against stack-exhaustion payloads, and every
//! error carries a byte offset for the structured 400 body.

use std::collections::BTreeMap;
use std::fmt;

/// Nesting depth limit; a parser stack frame per level, so this bounds
/// recursion on adversarial `[[[[…]]]]` bodies.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Numbers are kept as `f64` — the protocol's
/// integral fields range-check via [`Json::as_usize`], which rejects
/// fractional or out-of-range values rather than truncating them.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so iteration (and error messages) are
    /// deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a non-negative integer. Fractional, negative,
    /// non-finite or > 2^53 values are rejected — a payload saying
    /// `"max_wavelengths": 2.5` is an error, not wavelength 2.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The number as an `i64` (integral, in range).
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.is_finite() && n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
            Some(n as i64)
        } else {
            None
        }
    }

    /// Convenience: `self.as_obj()?.get(key)`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.get(key)
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the offence.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses `text` as a single JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| JsonError {
                message: format!("invalid number '{text}'"),
                offset: start,
            })
    }
}

/// Formats `n` the way the workspace's JSON writers do: integral values
/// without a fraction, everything else via `{}` (shortest round-trip).
pub fn fmt_f64(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_owned(); // JSON has no NaN/Inf
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// `"key": "escaped"` — the response writers' building block, on top of
/// [`xring_obs::json_escape`] (the workspace's one JSON string escaper).
pub fn str_field(key: &str, value: &str) -> String {
    format!(
        "\"{}\":\"{}\"",
        xring_obs::json_escape(key),
        xring_obs::json_escape(value)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".to_owned()));
        let arr = parse("[1, 2, 3]").unwrap();
        assert_eq!(arr.as_arr().unwrap().len(), 3);
        let obj = parse("{\"a\": {\"b\": [true]}}").unwrap();
        assert_eq!(
            obj.get("a").and_then(|a| a.get("b")),
            Some(&Json::Arr(vec![Json::Bool(true)]))
        );
    }

    #[test]
    fn decodes_unicode_escapes() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::Str("é".to_owned()));
        // Surrogate pair for U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_owned())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "unpaired surrogate accepted");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\x01\"",
            "{,}",
            "nan",
            "+1",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn reports_error_offsets() {
        let err = parse("{\"a\": ?}").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("at byte 6"));
    }

    #[test]
    fn depth_limit_blocks_nesting_bombs() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        // At the limit itself parsing still succeeds.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integral_accessors_reject_lossy_values() {
        assert_eq!(parse("4").unwrap().as_usize(), Some(4));
        assert_eq!(parse("4.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
        assert_eq!(parse("-3").unwrap().as_i64(), Some(-3));
    }

    #[test]
    fn float_formatting_round_trips() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-0.25), "-0.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(parse(&fmt_f64(1.0e-9)).unwrap(), Json::Num(1.0e-9));
    }

    #[test]
    fn str_field_escapes_both_sides() {
        assert_eq!(str_field("a\"b", "c\nd"), "\"a\\\"b\":\"c\\nd\"");
    }
}
