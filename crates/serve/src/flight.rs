//! The flight recorder: a bounded ring of recent request records plus a
//! tail-sampler that retains full span traces for the requests worth
//! debugging (slow, degraded, shed, or errored).
//!
//! The `/metrics` endpoint answers "how is the daemon doing"; the flight
//! recorder answers "what happened to *that* request". Every handled
//! request pushes one [`RequestRecord`] — id, route, spec hash, status,
//! degradation, queue/wall/per-phase timing, audit verdict — into a ring
//! of the most recent `capacity` records. The ring uses one atomic
//! cursor plus per-slot mutexes: writers never contend on a shared lock
//! beyond their own slot, so recording stays off the handler's critical
//! path even under 4-way concurrency.
//!
//! Full span traces are too large to keep for every request, and the
//! requests that need them are precisely the unusual ones. The
//! [`TailSampler`] keeps the exported JSONL trace only for requests
//! flagged slow / degraded / shed / errored ("tail-based" sampling: the
//! keep decision happens after the outcome is known), bounded to the
//! most recent `capacity` traces.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use xring_obs::json_escape;

/// One handled request, as remembered by the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// The request id (32 lowercase hex digits).
    pub id: String,
    /// The route handled (`/synth`, `/batch`, …).
    pub route: String,
    /// FNV-1a 64 hash of the request body, so identical specs can be
    /// correlated across requests without storing the spec itself.
    pub spec_hash: u64,
    /// The HTTP status returned.
    pub status: u16,
    /// The degradation level of the served design, when one was served.
    pub degradation: Option<String>,
    /// Queue wait, in microseconds.
    pub queue_us: u64,
    /// Wall time from dequeue to response, in microseconds.
    pub wall_us: u64,
    /// Per-phase inclusive wall time in microseconds, from the
    /// request-scoped trace (phase name → µs), sorted by name.
    pub phases: Vec<(String, u64)>,
    /// Synthesis phases reused from the incremental cache.
    pub phases_reused: u64,
    /// Audit verdict of the served design (`None` when no design was
    /// produced, e.g. shed or parse-error requests).
    pub audit_clean: Option<bool>,
    /// Wall time exceeded the recorder's slow threshold.
    pub slow: bool,
    /// The served design was degraded below `Exact`.
    pub degraded: bool,
    /// The request was shed by admission control (429).
    pub shed: bool,
    /// The request errored (status ≥ 400, other than shed).
    pub errored: bool,
    /// A full span trace was retained by the tail-sampler.
    pub sampled: bool,
}

impl RequestRecord {
    /// `true` when the tail-sampler should keep this request's full
    /// trace: something unusual happened.
    pub fn tail_worthy(&self) -> bool {
        self.slow || self.degraded || self.shed || self.errored
    }

    /// Renders the record as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"id\":\"");
        out.push_str(&json_escape(&self.id));
        out.push_str("\",\"route\":\"");
        out.push_str(&json_escape(&self.route));
        out.push_str(&format!(
            "\",\"spec_hash\":\"{:016x}\",\"status\":{}",
            self.spec_hash, self.status
        ));
        match &self.degradation {
            Some(level) => {
                out.push_str(",\"degradation\":\"");
                out.push_str(&json_escape(level));
                out.push('"');
            }
            None => out.push_str(",\"degradation\":null"),
        }
        out.push_str(&format!(
            ",\"queue_us\":{},\"wall_us\":{},\"phases\":{{",
            self.queue_us, self.wall_us
        ));
        for (i, (name, us)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json_escape(name));
            out.push_str(&format!("\":{us}"));
        }
        out.push_str(&format!("}},\"phases_reused\":{}", self.phases_reused));
        out.push_str(",\"audit_clean\":");
        match self.audit_clean {
            Some(true) => out.push_str("true"),
            Some(false) => out.push_str("false"),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"slow\":{},\"degraded\":{},\"shed\":{},\"errored\":{},\"sampled\":{}}}",
            self.slow, self.degraded, self.shed, self.errored, self.sampled
        ));
        out
    }
}

/// A bounded ring of the most recent [`RequestRecord`]s.
///
/// Push order is serialized by an atomic cursor (`fetch_add` assigns
/// each record a unique slot); each slot has its own mutex, so two
/// handler threads recording concurrently only contend when the ring
/// has wrapped all the way around between them.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<RequestRecord>>>,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A recorder remembering the most recent `capacity` requests
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (≥ the number currently retained).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records one request, evicting the oldest record once full.
    pub fn push(&self, record: RequestRecord) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(record);
    }

    /// The retained records, most recent first.
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        let pushed = self.cursor.load(Ordering::Relaxed);
        let len = self.slots.len() as u64;
        let mut out = Vec::with_capacity(len.min(pushed) as usize);
        // Walk backwards from the most recently assigned slot.
        let newest = pushed.saturating_sub(1);
        for back in 0..len.min(pushed) {
            let seq = newest - back;
            let slot = (seq % len) as usize;
            let guard = self.slots[slot]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(record) = guard.clone() {
                out.push(record);
            }
        }
        out
    }

    /// The most recent record with this id, if still retained.
    pub fn find(&self, id: &str) -> Option<RequestRecord> {
        self.snapshot().into_iter().find(|r| r.id == id)
    }
}

/// Tail-based trace sampler: keeps the full JSONL span trace of the most
/// recent `capacity` requests whose records were
/// [`tail_worthy`](RequestRecord::tail_worthy).
#[derive(Debug)]
pub struct TailSampler {
    capacity: usize,
    kept: Mutex<VecDeque<(String, String)>>,
    considered: AtomicU64,
    retained: AtomicU64,
}

impl TailSampler {
    /// A sampler retaining at most `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TailSampler {
            capacity: capacity.max(1),
            kept: Mutex::new(VecDeque::new()),
            considered: AtomicU64::new(0),
            retained: AtomicU64::new(0),
        }
    }

    /// Offers one finished request; keeps `trace_jsonl` iff the record
    /// is tail-worthy. Returns whether the trace was kept.
    pub fn offer(&self, record: &RequestRecord, trace_jsonl: &str) -> bool {
        self.considered.fetch_add(1, Ordering::Relaxed);
        if !record.tail_worthy() {
            return false;
        }
        self.retained.fetch_add(1, Ordering::Relaxed);
        let mut kept = self
            .kept
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if kept.len() == self.capacity {
            kept.pop_front();
        }
        kept.push_back((record.id.clone(), trace_jsonl.to_owned()));
        true
    }

    /// The retained trace for this request id, if any.
    pub fn get(&self, id: &str) -> Option<String> {
        self.kept
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .rev()
            .find(|(kept_id, _)| kept_id == id)
            .map(|(_, trace)| trace.clone())
    }

    /// Ids with a retained trace, most recent first.
    pub fn ids(&self) -> Vec<String> {
        self.kept
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .rev()
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Requests offered so far.
    pub fn considered(&self) -> u64 {
        self.considered.load(Ordering::Relaxed)
    }

    /// Traces kept so far (≥ the number currently retained).
    pub fn retained(&self) -> u64 {
        self.retained.load(Ordering::Relaxed)
    }
}

/// FNV-1a 64-bit hash — the spec fingerprint stored in request records.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, wall_us: u64, slow: bool) -> RequestRecord {
        RequestRecord {
            id: id.to_owned(),
            route: "/synth".to_owned(),
            spec_hash: fnv1a64(id.as_bytes()),
            status: 200,
            degradation: Some("exact".to_owned()),
            queue_us: 5,
            wall_us,
            phases: vec![("ring-milp".to_owned(), wall_us / 2)],
            phases_reused: 0,
            audit_clean: Some(true),
            slow,
            degraded: false,
            shed: false,
            errored: false,
            sampled: false,
        }
    }

    #[test]
    fn ring_retains_most_recent_and_evicts_oldest() {
        let flight = FlightRecorder::new(4);
        assert_eq!(flight.capacity(), 4);
        assert!(flight.snapshot().is_empty());
        for i in 0..10 {
            flight.push(record(&format!("req-{i}"), i, false));
        }
        assert_eq!(flight.pushed(), 10);
        let snap = flight.snapshot();
        assert_eq!(snap.len(), 4, "bounded by capacity");
        let ids: Vec<&str> = snap.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["req-9", "req-8", "req-7", "req-6"]);
        assert!(flight.find("req-9").is_some());
        assert!(flight.find("req-0").is_none(), "evicted");
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let flight = FlightRecorder::new(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let flight = &flight;
                scope.spawn(move || {
                    for i in 0..50 {
                        flight.push(record(&format!("t{t}-{i}"), i, false));
                    }
                });
            }
        });
        assert_eq!(flight.pushed(), 200);
        assert_eq!(flight.snapshot().len(), 8);
    }

    #[test]
    fn record_renders_valid_looking_json() {
        let mut r = record("abc", 1234, true);
        r.audit_clean = None;
        r.degradation = None;
        let json = r.to_json();
        assert!(json.starts_with("{\"id\":\"abc\""));
        assert!(json.contains("\"degradation\":null"));
        assert!(json.contains("\"phases\":{\"ring-milp\":617}"));
        assert!(json.contains("\"audit_clean\":null"));
        assert!(json.contains("\"slow\":true"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn tail_sampler_keeps_only_unusual_requests() {
        let tail = TailSampler::new(2);
        assert!(!tail.offer(&record("fast", 10, false), "trace-fast"));
        assert!(tail.offer(&record("slow-1", 10_000, true), "trace-1"));
        let mut degraded = record("degraded-1", 10, false);
        degraded.degraded = true;
        assert!(tail.offer(&degraded, "trace-2"));
        let mut shed = record("shed-1", 0, false);
        shed.shed = true;
        assert!(tail.offer(&shed, "trace-3"), "shed is tail-worthy");
        assert_eq!(tail.considered(), 4);
        assert_eq!(tail.retained(), 3);
        // Capacity 2: the oldest kept trace fell off.
        assert!(tail.get("slow-1").is_none());
        assert_eq!(tail.get("degraded-1").as_deref(), Some("trace-2"));
        assert_eq!(tail.get("shed-1").as_deref(), Some("trace-3"));
        assert_eq!(tail.ids(), ["shed-1", "degraded-1"]);
        assert!(tail.get("fast").is_none());
    }

    #[test]
    fn fnv_hash_is_stable_and_spreads() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_eq!(fnv1a64(b"spec"), fnv1a64(b"spec"));
    }
}
