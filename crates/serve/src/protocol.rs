//! The wire protocol: JSON request bodies → [`SynthesisJob`]s, job
//! outcomes → JSON response bodies.
//!
//! Decoding is *strict*: unknown keys are rejected with a 400 naming the
//! offending key, so a client typo (`"max_wavelenghts"`) fails loudly
//! instead of silently synthesizing with defaults. Encoding reuses
//! [`xring_obs::json_escape`] via the [`crate::json`] helpers — the
//! workspace keeps a single JSON string escaper.
//!
//! # Request schema (`POST /synth`)
//!
//! ```json
//! {
//!   "label": "my-router",                    // optional
//!   "net": {"named": "proton_8"}             // one of:
//!        | {"grid": {"rows": 4, "cols": 4, "pitch_um": 2000}}
//!        | {"positions": [[0, 0], [1500, 0], [0, 1500]]}
//!        | {"irregular": {"n": 16, "die_um": 12000, "seed": 7}},
//!   "options": {                             // optional, all fields optional
//!     "max_wavelengths": 16,
//!     "max_waveguides": 0,
//!     "shortcuts": true, "openings": true, "pdn": true,
//!     "ring_algorithm": "milp" | "heuristic" | "perimeter",
//!     "traffic": "all-to-all" | {"knn": 3}
//!              | {"hotspot": {"hotspots": 2, "seed": 7}}
//!              | {"permutation": {"seed": 11}},
//!     "spares": 1 | {"k_wavelengths": 1, "k_mrrs": 1},
//!     "deadline_ms": 250,
//!     "degradation": "forbid" | "allow" | "force-heuristic",
//!     "lp_backend": "revised" | "dense",
//!     "solver_threads": 4,
//!     "pricing": "dantzig" | "devex" | "partial",
//!     "factorization": "sparse-lu" | "dense-eta"
//!   }
//! }
//! ```
//!
//! `"spares"` reserves that many spare wavelength channels and spare
//! MRRs per route (a bare integer applies to both classes); synthesis
//! then proves every single device fault survivable before releasing
//! the design and the job fails with 422 otherwise.
//!
//! `POST /batch` wraps a list: `{"jobs": [<synth request>, …]}`.

use std::time::Duration;

use xring_core::{
    DegradationPolicy, NetworkSpec, RingAlgorithm, SpareConfig, SynthesisOptions, Traffic,
};
use xring_engine::{JobError, JobOutput, SynthesisJob};
use xring_geom::Point;

use crate::json::{self, fmt_f64, str_field, Json};

/// Hard cap on jobs per `/batch` request: bounds the work a single
/// request can pin regardless of admission settings.
pub const MAX_BATCH_JOBS: usize = 64;

/// Hard cap on nodes per network: synthesis cost grows super-linearly,
/// so this bounds the largest job a request can submit.
pub const MAX_NODES: usize = 256;

/// A protocol-level rejection: HTTP status, stable machine-readable
/// code, human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// HTTP status to respond with (400/413/422).
    pub status: u16,
    /// Stable error code (`"bad_json"`, `"unknown_field"`, …).
    pub code: &'static str,
    /// Detail for the human reading the response.
    pub message: String,
}

impl ProtocolError {
    fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        ProtocolError {
            status: 400,
            code,
            message: message.into(),
        }
    }

    fn unprocessable(code: &'static str, message: impl Into<String>) -> Self {
        ProtocolError {
            status: 422,
            code,
            message: message.into(),
        }
    }
}

/// Server-side defaults applied when a request leaves a knob unset:
/// the daemon's `--deadline-ms` and `--degradation` flags.
#[derive(Debug, Clone, Default)]
pub struct RequestDefaults {
    /// Default per-request deadline (`None` = unbounded).
    pub deadline: Option<Duration>,
    /// Default degradation policy.
    pub degradation: DegradationPolicy,
}

/// Parses a `POST /synth` body into a job. `index` seeds the default
/// label so batch members stay distinguishable.
pub fn parse_synth(
    body: &str,
    defaults: &RequestDefaults,
    index: usize,
) -> Result<SynthesisJob, ProtocolError> {
    let doc =
        json::parse(body).map_err(|e| ProtocolError::bad_request("bad_json", e.to_string()))?;
    job_from_json(&doc, defaults, index)
}

/// Parses a `POST /batch` body (`{"jobs": [...]}`) into its jobs.
pub fn parse_batch(
    body: &str,
    defaults: &RequestDefaults,
) -> Result<Vec<SynthesisJob>, ProtocolError> {
    let doc =
        json::parse(body).map_err(|e| ProtocolError::bad_request("bad_json", e.to_string()))?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| ProtocolError::bad_request("bad_request", "batch body must be an object"))?;
    for key in obj.keys() {
        if key != "jobs" {
            return Err(unknown_field(key, "batch request"));
        }
    }
    let jobs = obj
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtocolError::bad_request("bad_request", "missing \"jobs\" array"))?;
    if jobs.is_empty() {
        return Err(ProtocolError::bad_request(
            "bad_request",
            "empty \"jobs\" array",
        ));
    }
    if jobs.len() > MAX_BATCH_JOBS {
        return Err(ProtocolError {
            status: 413,
            code: "batch_too_large",
            message: format!("{} jobs exceeds the limit of {MAX_BATCH_JOBS}", jobs.len()),
        });
    }
    jobs.iter()
        .enumerate()
        .map(|(i, j)| job_from_json(j, defaults, i))
        .collect()
}

fn unknown_field(key: &str, context: &str) -> ProtocolError {
    ProtocolError::bad_request(
        "unknown_field",
        format!("unknown field \"{key}\" in {context}"),
    )
}

fn job_from_json(
    doc: &Json,
    defaults: &RequestDefaults,
    index: usize,
) -> Result<SynthesisJob, ProtocolError> {
    let obj = doc
        .as_obj()
        .ok_or_else(|| ProtocolError::bad_request("bad_request", "request must be an object"))?;
    for key in obj.keys() {
        if !matches!(key.as_str(), "label" | "net" | "options") {
            return Err(unknown_field(key, "request"));
        }
    }
    let label = match obj.get("label") {
        None => format!("req-{index}"),
        Some(v) => v
            .as_str()
            .ok_or_else(|| ProtocolError::bad_request("bad_request", "\"label\" must be a string"))?
            .to_owned(),
    };
    let net = net_from_json(
        obj.get("net")
            .ok_or_else(|| ProtocolError::bad_request("bad_request", "missing \"net\""))?,
    )?;
    if net.len() > MAX_NODES {
        return Err(ProtocolError::unprocessable(
            "network_too_large",
            format!("{} nodes exceeds the limit of {MAX_NODES}", net.len()),
        ));
    }
    let mut options = SynthesisOptions {
        deadline: defaults.deadline,
        degradation: defaults.degradation,
        ..SynthesisOptions::default()
    };
    if let Some(opts) = obj.get("options") {
        apply_options(opts, &mut options)?;
    }
    Ok(SynthesisJob::new(label, net, options))
}

fn net_from_json(v: &Json) -> Result<NetworkSpec, ProtocolError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| ProtocolError::bad_request("bad_request", "\"net\" must be an object"))?;
    if obj.len() != 1 {
        return Err(ProtocolError::bad_request(
            "bad_request",
            "\"net\" must have exactly one of: named, grid, positions, irregular",
        ));
    }
    let (kind, body) = obj.iter().next().expect("len == 1");
    match kind.as_str() {
        "named" => {
            let name = body.as_str().ok_or_else(|| {
                ProtocolError::bad_request("bad_request", "\"named\" must be a string")
            })?;
            match name {
                "proton_8" => Ok(NetworkSpec::proton_8()),
                "proton_16" => Ok(NetworkSpec::proton_16()),
                "psion_8" => Ok(NetworkSpec::psion_8()),
                "psion_16" => Ok(NetworkSpec::psion_16()),
                "psion_32" => Ok(NetworkSpec::psion_32()),
                other => Err(ProtocolError::unprocessable(
                    "unknown_network",
                    format!(
                        "unknown network \"{other}\" (expected proton_8, proton_16, psion_8, psion_16 or psion_32)"
                    ),
                )),
            }
        }
        "grid" => {
            let rows = require_usize(body, "rows", "grid")?;
            let cols = require_usize(body, "cols", "grid")?;
            let pitch = require_i64(body, "pitch_um", "grid")?;
            check_keys(body, &["rows", "cols", "pitch_um"], "grid")?;
            NetworkSpec::regular_grid(rows, cols, pitch)
                .map_err(|e| ProtocolError::unprocessable("invalid_network", e.to_string()))
        }
        "positions" => {
            let arr = body.as_arr().ok_or_else(|| {
                ProtocolError::bad_request("bad_request", "\"positions\" must be an array")
            })?;
            let mut points = Vec::with_capacity(arr.len());
            for (i, p) in arr.iter().enumerate() {
                let pair = p.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                    ProtocolError::bad_request(
                        "bad_request",
                        format!("positions[{i}] must be an [x, y] pair"),
                    )
                })?;
                let x = pair[0].as_i64().ok_or_else(|| bad_coord(i))?;
                let y = pair[1].as_i64().ok_or_else(|| bad_coord(i))?;
                points.push(Point::new(x, y));
            }
            NetworkSpec::new(points)
                .map_err(|e| ProtocolError::unprocessable("invalid_network", e.to_string()))
        }
        "irregular" => {
            let n = require_usize(body, "n", "irregular")?;
            let die = require_i64(body, "die_um", "irregular")?;
            let seed = require_usize(body, "seed", "irregular")? as u64;
            check_keys(body, &["n", "die_um", "seed"], "irregular")?;
            NetworkSpec::irregular(n, die, seed)
                .map_err(|e| ProtocolError::unprocessable("invalid_network", e.to_string()))
        }
        other => Err(ProtocolError::bad_request(
            "bad_request",
            format!("unknown net kind \"{other}\""),
        )),
    }
}

fn bad_coord(i: usize) -> ProtocolError {
    ProtocolError::bad_request(
        "bad_request",
        format!("positions[{i}] coordinates must be integers"),
    )
}

fn check_keys(v: &Json, allowed: &[&str], context: &str) -> Result<(), ProtocolError> {
    let obj = v.as_obj().ok_or_else(|| {
        ProtocolError::bad_request("bad_request", format!("\"{context}\" must be an object"))
    })?;
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(unknown_field(key, context));
        }
    }
    Ok(())
}

fn require_usize(v: &Json, key: &str, context: &str) -> Result<usize, ProtocolError> {
    v.get(key).and_then(Json::as_usize).ok_or_else(|| {
        ProtocolError::bad_request(
            "bad_request",
            format!("\"{context}\" needs a non-negative integer \"{key}\""),
        )
    })
}

fn require_i64(v: &Json, key: &str, context: &str) -> Result<i64, ProtocolError> {
    v.get(key).and_then(Json::as_i64).ok_or_else(|| {
        ProtocolError::bad_request(
            "bad_request",
            format!("\"{context}\" needs an integer \"{key}\""),
        )
    })
}

fn apply_options(v: &Json, options: &mut SynthesisOptions) -> Result<(), ProtocolError> {
    const ALLOWED: &[&str] = &[
        "max_wavelengths",
        "max_waveguides",
        "shortcuts",
        "openings",
        "pdn",
        "ring_algorithm",
        "traffic",
        "spares",
        "deadline_ms",
        "degradation",
        "lp_backend",
        "solver_threads",
        "pricing",
        "factorization",
    ];
    let obj = v.as_obj().ok_or_else(|| {
        ProtocolError::bad_request("bad_request", "\"options\" must be an object")
    })?;
    for (key, value) in obj {
        match key.as_str() {
            "max_wavelengths" => {
                options.max_wavelengths = value
                    .as_usize()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| option_err(key, "a positive integer"))?;
            }
            "max_waveguides" => {
                options.max_waveguides = value
                    .as_usize()
                    .ok_or_else(|| option_err(key, "a non-negative integer"))?;
            }
            "shortcuts" => options.shortcuts = require_bool(value, key)?,
            "openings" => options.openings = require_bool(value, key)?,
            "pdn" => options.pdn = require_bool(value, key)?,
            "ring_algorithm" => {
                options.ring_algorithm = match value.as_str() {
                    Some("milp") => RingAlgorithm::Milp,
                    Some("heuristic") => RingAlgorithm::Heuristic,
                    Some("perimeter") => RingAlgorithm::Perimeter,
                    _ => {
                        return Err(option_err(
                            key,
                            "one of \"milp\", \"heuristic\", \"perimeter\"",
                        ))
                    }
                };
            }
            "traffic" => {
                const FORMS: &str = "\"all-to-all\", {\"knn\": N}, \
                     {\"hotspot\": {\"hotspots\": N, \"seed\": S}} or \
                     {\"permutation\": {\"seed\": S}}";
                options.traffic = match value {
                    Json::Str(s) if s == "all-to-all" => Traffic::AllToAll,
                    Json::Obj(o) if o.len() == 1 => {
                        let (kind, body) = o.iter().next().expect("len == 1");
                        match kind.as_str() {
                            "knn" => {
                                let k = body
                                    .as_usize()
                                    .filter(|&k| k >= 1)
                                    .ok_or_else(|| option_err(key, "\"knn\" of at least 1"))?;
                                Traffic::NearestNeighbors(k)
                            }
                            "hotspot" => {
                                check_keys(body, &["hotspots", "seed"], "hotspot")?;
                                let hotspots = require_usize(body, "hotspots", "hotspot")?;
                                if hotspots == 0 {
                                    return Err(option_err(key, "\"hotspots\" of at least 1"));
                                }
                                let seed = require_usize(body, "seed", "hotspot")? as u64;
                                Traffic::Hotspot { hotspots, seed }
                            }
                            "permutation" => {
                                check_keys(body, &["seed"], "permutation")?;
                                let seed = require_usize(body, "seed", "permutation")? as u64;
                                Traffic::Permutation { seed }
                            }
                            _ => return Err(option_err(key, FORMS)),
                        }
                    }
                    _ => return Err(option_err(key, FORMS)),
                };
            }
            "spares" => {
                options.spares = match value {
                    Json::Obj(_) => {
                        check_keys(value, &["k_wavelengths", "k_mrrs"], "spares")?;
                        let mut spares = SpareConfig::default();
                        if let Some(v) = value.get("k_wavelengths") {
                            spares.k_wavelengths = v.as_usize().ok_or_else(|| {
                                option_err("k_wavelengths", "a non-negative integer")
                            })?;
                        }
                        if let Some(v) = value.get("k_mrrs") {
                            spares.k_mrrs = v
                                .as_usize()
                                .ok_or_else(|| option_err("k_mrrs", "a non-negative integer"))?;
                        }
                        spares
                    }
                    _ => SpareConfig::uniform(value.as_usize().ok_or_else(|| {
                        option_err(
                            key,
                            "a non-negative integer or {\"k_wavelengths\": N, \"k_mrrs\": M}",
                        )
                    })?),
                };
            }
            "deadline_ms" => {
                let ms = value
                    .as_usize()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| option_err(key, "a positive integer of milliseconds"))?;
                options.deadline = Some(Duration::from_millis(ms as u64));
            }
            "degradation" => {
                options.degradation = value
                    .as_str()
                    .and_then(|s| s.parse::<DegradationPolicy>().ok())
                    .ok_or_else(|| {
                        option_err(key, "one of \"forbid\", \"allow\", \"force-heuristic\"")
                    })?;
            }
            "lp_backend" => {
                options.lp_backend = value
                    .as_str()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| option_err(key, "one of \"revised\", \"dense\""))?;
            }
            "solver_threads" => {
                options.solver_threads = value
                    .as_usize()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| option_err(key, "a positive integer"))?;
            }
            "pricing" => {
                options.pricing = value
                    .as_str()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| option_err(key, "one of \"dantzig\", \"devex\", \"partial\""))?;
            }
            "factorization" => {
                options.factorization = value
                    .as_str()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| option_err(key, "one of \"sparse-lu\", \"dense-eta\""))?;
            }
            other => {
                debug_assert!(!ALLOWED.contains(&other));
                return Err(unknown_field(other, "options"));
            }
        }
    }
    Ok(())
}

fn option_err(key: &str, expected: &str) -> ProtocolError {
    ProtocolError::bad_request("bad_request", format!("\"{key}\" must be {expected}"))
}

fn require_bool(v: &Json, key: &str) -> Result<bool, ProtocolError> {
    v.as_bool().ok_or_else(|| option_err(key, "a boolean"))
}

/// Renders a successful job outcome. Every success carries the audit
/// verdict and the degradation level — operators gate on both.
pub fn render_output(out: &JobOutput, queue_us: u64, wall_us: u64) -> String {
    let p = &out.design.provenance;
    let audit = &p.audit;
    let r = &out.report;
    let opt_f64 = |v: Option<f64>| v.map_or_else(|| "null".to_owned(), fmt_f64);
    let opt_usize = |v: Option<usize>| v.map_or_else(|| "null".to_owned(), |n| n.to_string());
    format!(
        concat!(
            "{{{label},\"cache_hit\":{cache_hit},\"phases_reused\":{phases_reused},",
            "\"degradation\":\"{degradation}\",\"fallback_reason\":{fallback},",
            "\"audit\":{{\"clean\":{clean},\"verdicts\":{verdicts},{summary}}},",
            "\"report\":{{\"num_wavelengths\":{wl},\"worst_il_db\":{il},",
            "\"worst_path_len_mm\":{len},\"worst_path_crossings\":{crossings},",
            "\"total_power_w\":{power},\"noisy_signal_count\":{noisy},",
            "\"worst_snr_db\":{snr},\"signal_count\":{signals}}},",
            "\"queue_us\":{queue_us},\"wall_us\":{wall_us}}}"
        ),
        label = str_field("label", &out.label),
        cache_hit = out.cache_hit,
        phases_reused = out.phases_reused,
        degradation = p.degradation.as_str(),
        fallback = p.fallback_reason.as_deref().map_or_else(
            || "null".to_owned(),
            |r| format!("\"{}\"", xring_obs::json_escape(r))
        ),
        clean = audit.is_clean(),
        verdicts = audit.verdicts.len(),
        summary = str_field("summary", &audit.summary()),
        wl = r.num_wavelengths,
        il = fmt_f64(r.worst_il_db),
        len = fmt_f64(r.worst_path_len_mm),
        crossings = r.worst_path_crossings,
        power = opt_f64(r.total_power_w),
        noisy = opt_usize(r.noisy_signal_count),
        snr = opt_f64(r.worst_snr_db),
        signals = r.signal_count,
        queue_us = queue_us,
        wall_us = wall_us,
    )
}

/// Maps a job failure to `(status, body)`. Deadline expiry is 504 —
/// the daemon accepted the work but could not finish it in budget
/// (with `degradation: "allow"`, the fallback chain usually turns this
/// into a degraded 200 instead).
pub fn render_job_error(label: &str, err: &JobError) -> (u16, String) {
    let (status, code, message) = match err {
        JobError::DeadlineExceeded => (
            504,
            "deadline_exceeded",
            "synthesis exceeded its deadline".to_owned(),
        ),
        JobError::Synthesis(e) => (422, "synthesis_failed", e.to_string()),
        JobError::Panicked(m) => (500, "internal_panic", m.clone()),
    };
    (
        status,
        render_error_with_label(Some(label), status, code, &message),
    )
}

/// Renders a structured error body: `{"error": {...}}`.
pub fn render_error(status: u16, code: &str, message: &str) -> String {
    render_error_with_label(None, status, code, message)
}

/// Splices a `"request_id"` member into an already-rendered JSON object
/// body (before its closing brace). Every `/synth` and `/batch` response
/// carries its request id in the body as well as in the `x-request-id`
/// header, so clients that log bodies correlate for free. Bodies that
/// are not JSON objects are returned unchanged.
pub fn with_request_id(mut body: String, request_id: &str) -> String {
    if !body.ends_with('}') {
        return body;
    }
    body.truncate(body.len() - 1);
    body.push_str(",\"request_id\":\"");
    body.push_str(&xring_obs::json_escape(request_id));
    body.push_str("\"}");
    body
}

fn render_error_with_label(label: Option<&str>, status: u16, code: &str, message: &str) -> String {
    let label = label.map_or(String::new(), |l| format!("{},", str_field("label", l)));
    format!(
        "{{{label}\"error\":{{\"status\":{status},{code},{message}}}}}",
        code = str_field("code", code),
        message = str_field("message", message),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> RequestDefaults {
        RequestDefaults::default()
    }

    #[test]
    fn with_request_id_splices_before_the_closing_brace() {
        let body = render_error(429, "shed", "try later");
        let tagged = with_request_id(body, "00ff00ff00ff00ff00ff00ff00ff00ff");
        assert!(
            tagged.ends_with(",\"request_id\":\"00ff00ff00ff00ff00ff00ff00ff00ff\"}"),
            "{tagged}"
        );
        assert!(tagged.starts_with("{\"error\":{"), "{tagged}");
        // Non-object bodies pass through untouched.
        assert_eq!(
            with_request_id("plain text".to_owned(), "abc"),
            "plain text"
        );
    }

    #[test]
    fn parses_a_minimal_request() {
        let job = parse_synth(r#"{"net": {"named": "proton_8"}}"#, &defaults(), 3).unwrap();
        assert_eq!(job.label, "req-3");
        assert_eq!(job.net.len(), 8);
        assert_eq!(job.options.max_wavelengths, 16);
        assert_eq!(job.options.degradation, DegradationPolicy::Forbid);
        assert_eq!(job.options.deadline, None);
    }

    #[test]
    fn parses_every_net_kind() {
        let grid = r#"{"net": {"grid": {"rows": 2, "cols": 4, "pitch_um": 1500}}}"#;
        assert_eq!(parse_synth(grid, &defaults(), 0).unwrap().net.len(), 8);
        let pos = r#"{"net": {"positions": [[0,0],[1500,0],[0,1500],[1500,1500]]}}"#;
        assert_eq!(parse_synth(pos, &defaults(), 0).unwrap().net.len(), 4);
        let irr = r#"{"net": {"irregular": {"n": 6, "die_um": 8000, "seed": 7}}}"#;
        assert_eq!(parse_synth(irr, &defaults(), 0).unwrap().net.len(), 6);
    }

    #[test]
    fn applies_options_and_defaults() {
        let d = RequestDefaults {
            deadline: Some(Duration::from_millis(500)),
            degradation: DegradationPolicy::Allow,
        };
        // Server defaults flow in when the request is silent...
        let job = parse_synth(r#"{"net": {"named": "proton_8"}}"#, &d, 0).unwrap();
        assert_eq!(job.options.deadline, Some(Duration::from_millis(500)));
        assert_eq!(job.options.degradation, DegradationPolicy::Allow);
        // ...and the request overrides them.
        let body = r#"{"label": "x", "net": {"named": "proton_8"}, "options": {
            "max_wavelengths": 4, "shortcuts": false, "deadline_ms": 20,
            "degradation": "force-heuristic", "lp_backend": "dense",
            "ring_algorithm": "heuristic", "traffic": {"knn": 2}}}"#;
        let job = parse_synth(body, &d, 0).unwrap();
        assert_eq!(job.label, "x");
        assert_eq!(job.options.max_wavelengths, 4);
        assert!(!job.options.shortcuts);
        assert_eq!(job.options.deadline, Some(Duration::from_millis(20)));
        assert_eq!(job.options.degradation, DegradationPolicy::ForceHeuristic);
        assert_eq!(job.options.traffic, Traffic::NearestNeighbors(2));
        assert!(matches!(
            job.options.ring_algorithm,
            RingAlgorithm::Heuristic
        ));
    }

    #[test]
    fn applies_solver_knobs_and_rejects_bad_ones() {
        let body = r#"{"net": {"named": "proton_8"}, "options": {
            "solver_threads": 4, "pricing": "devex",
            "factorization": "dense-eta"}}"#;
        let job = parse_synth(body, &defaults(), 0).unwrap();
        assert_eq!(job.options.solver_threads, 4);
        assert_eq!(job.options.pricing, xring_core::PricingKind::Devex);
        assert_eq!(
            job.options.factorization,
            xring_core::FactorizationKind::DenseEta
        );
        // Unset knobs keep the defaults.
        let job = parse_synth(r#"{"net": {"named": "proton_8"}}"#, &defaults(), 0).unwrap();
        assert_eq!(job.options.solver_threads, 1);
        assert_eq!(job.options.pricing, xring_core::PricingKind::Dantzig);
        assert_eq!(
            job.options.factorization,
            xring_core::FactorizationKind::SparseLu
        );
        for bad in [
            r#"{"solver_threads": 0}"#,
            r#"{"solver_threads": "many"}"#,
            r#"{"pricing": "steepest"}"#,
            r#"{"factorization": "qr"}"#,
        ] {
            let body = format!(r#"{{"net": {{"named": "proton_8"}}, "options": {bad}}}"#);
            let err = parse_synth(&body, &defaults(), 0).unwrap_err();
            assert_eq!(err.code, "bad_request", "{bad}");
        }
    }

    #[test]
    fn parses_spares_and_seeded_traffic() {
        let body = r#"{"net": {"named": "proton_8"}, "options": {
            "spares": 1, "traffic": {"hotspot": {"hotspots": 2, "seed": 7}}}}"#;
        let job = parse_synth(body, &defaults(), 0).unwrap();
        assert_eq!(job.options.spares, SpareConfig::uniform(1));
        assert_eq!(
            job.options.traffic,
            Traffic::Hotspot {
                hotspots: 2,
                seed: 7
            }
        );
        let body = r#"{"net": {"named": "proton_8"}, "options": {
            "spares": {"k_wavelengths": 2},
            "traffic": {"permutation": {"seed": 11}}}}"#;
        let job = parse_synth(body, &defaults(), 0).unwrap();
        assert_eq!(
            job.options.spares,
            SpareConfig {
                k_wavelengths: 2,
                k_mrrs: 0
            }
        );
        assert_eq!(job.options.traffic, Traffic::Permutation { seed: 11 });
        // Unset spares stay at the no-spare default.
        let job = parse_synth(r#"{"net": {"named": "proton_8"}}"#, &defaults(), 0).unwrap();
        assert_eq!(job.options.spares, SpareConfig::default());
    }

    #[test]
    fn rejects_bad_spares_and_traffic_forms() {
        let cases = [
            (r#"{"spares": 1.5}"#, "bad_request"),
            (r#"{"spares": "one"}"#, "bad_request"),
            (r#"{"spares": {"k_channels": 1}}"#, "unknown_field"),
            (
                r#"{"traffic": {"hotspot": {"hotspots": 0, "seed": 1}}}"#,
                "bad_request",
            ),
            (
                r#"{"traffic": {"hotspot": {"hotspots": 2}}}"#,
                "bad_request",
            ),
            (
                r#"{"traffic": {"permutation": {"seed": 1, "extra": 2}}}"#,
                "unknown_field",
            ),
            (r#"{"traffic": {"poisson": {"rate": 1}}}"#, "bad_request"),
        ];
        for (options, code) in cases {
            let body = format!(r#"{{"net": {{"named": "proton_8"}}, "options": {options}}}"#);
            let err = parse_synth(&body, &defaults(), 0).unwrap_err();
            assert_eq!(err.code, code, "options: {options}");
        }
    }

    #[test]
    fn rejects_unknown_and_ill_typed_fields() {
        let cases = [
            (
                r#"{"net": {"named": "proton_8"}, "nett": 1}"#,
                "unknown_field",
            ),
            (
                r#"{"net": {"named": "proton_8"}, "options": {"max_wavelenghts": 4}}"#,
                "unknown_field",
            ),
            (
                r#"{"net": {"named": "proton_8"}, "options": {"max_wavelengths": 2.5}}"#,
                "bad_request",
            ),
            (
                r#"{"net": {"named": "proton_8"}, "options": {"deadline_ms": 0}}"#,
                "bad_request",
            ),
            (r#"{"net": {"named": "andromeda_64"}}"#, "unknown_network"),
            (r#"{"net": {}}"#, "bad_request"),
            (
                r#"{"net": {"positions": [[0,0],[1,1]]}}"#,
                "invalid_network",
            ),
            (r#"not json"#, "bad_json"),
            (r#"[1,2]"#, "bad_request"),
        ];
        for (body, code) in cases {
            let err = parse_synth(body, &defaults(), 0).unwrap_err();
            assert_eq!(err.code, code, "body: {body}");
            assert!(err.status == 400 || err.status == 422);
        }
    }

    #[test]
    fn batch_parses_and_caps() {
        let body = r#"{"jobs": [
            {"net": {"named": "proton_8"}},
            {"label": "b", "net": {"named": "psion_16"}}
        ]}"#;
        let jobs = parse_batch(body, &defaults()).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].label, "req-0");
        assert_eq!(jobs[1].label, "b");

        assert_eq!(
            parse_batch(r#"{"jobs": []}"#, &defaults())
                .unwrap_err()
                .status,
            400
        );
        let one = r#"{"net": {"named": "proton_8"}}"#;
        let too_many = format!(
            "{{\"jobs\": [{}]}}",
            vec![one; MAX_BATCH_JOBS + 1].join(",")
        );
        assert_eq!(parse_batch(&too_many, &defaults()).unwrap_err().status, 413);
    }

    #[test]
    fn error_bodies_are_valid_json() {
        let body = render_error(400, "bad_json", "expected ':' at byte 7 in \"x\"");
        let doc = json::parse(&body).expect("error body parses");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("status")),
            Some(&Json::Num(400.0))
        );
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("bad_json")
        );
        let (status, body) = render_job_error("lbl", &JobError::DeadlineExceeded);
        assert_eq!(status, 504);
        let doc = json::parse(&body).expect("deadline body parses");
        assert_eq!(doc.get("label").and_then(Json::as_str), Some("lbl"));
    }
}
