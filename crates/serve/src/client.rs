//! A minimal blocking HTTP client for tests, benches and the CI smoke
//! binary. One request per connection, mirroring the server's
//! `Connection: close` model.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How long a request may take end to end before the client gives up.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

/// A parsed response: status code, lowercase-name `(name, value)`
/// header pairs, and the body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// Sends one HTTP/1.1 request to `addr` and returns
/// `(status, body)`. The body is sent with `Content-Length` framing;
/// pass `""` for body-less requests.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let (status, _headers, body) = http_request_full(addr, method, path, &[], body)?;
    Ok((status, body))
}

/// [`http_request`] with extra request headers, also returning the
/// response headers as lowercase-name `(name, value)` pairs — the
/// observability tests use this to assert the `x-request-id` echo.
pub fn http_request_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<FullResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n",
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &str) -> io::Result<FullResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_owned());
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator in response"))?;
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.to_ascii_lowercase(), value.trim().to_owned()))
        .collect();
    Ok((status, headers, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_headers_and_body() {
        let (status, headers, body) =
            parse_response("HTTP/1.1 429 Too Many Requests\r\nX-Req: y\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(status, 429);
        assert_eq!(headers, vec![("x-req".to_owned(), "y".to_owned())]);
        assert_eq!(body, "{\"a\":1}");
    }

    #[test]
    fn rejects_non_http_responses() {
        assert!(parse_response("garbage").is_err());
        assert!(parse_response("HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
