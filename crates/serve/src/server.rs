//! The daemon: accept loop, admission control, handler pool, graceful
//! shutdown.
//!
//! # Request lifecycle
//!
//! ```text
//! accept ─ read/parse HTTP ─┬─ GET /healthz, /metrics ── answered inline
//!                           └─ POST /synth, /batch ─ admission
//!                                 │ queue full → 429 (shed)
//!                                 ▼
//!                           bounded queue ─ handler thread
//!                                 ▼
//!                           cache probe → engine job → audit → response
//! ```
//!
//! Admission control is two bounds: `max_inflight` handler threads and a
//! `queue_depth`-slot queue between the accept loop and the handlers
//! ([`std::sync::mpsc::sync_channel`]). When both are full the daemon
//! sheds the request with an immediate 429 instead of letting latency
//! grow without bound — under overload, fail fast and tell the client.
//! `GET /healthz` and `GET /metrics` are answered inline by the accept
//! loop, *bypassing* admission: the operator's view into an overloaded
//! daemon must not itself be shed.
//!
//! Shutdown (`POST /shutdown` or [`Server::shutdown`]) stops accepting,
//! lets the handlers drain every already-admitted request, joins all
//! threads, and leaves the metrics readable for a final flush.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use xring_core::{DegradationLevel, DegradationPolicy};
use xring_engine::{DesignCache, Engine, JobError, SynthesisJob};

use crate::http::{self, Request};
use crate::metrics::ServeMetrics;
use crate::protocol::{self, RequestDefaults};

/// Daemon configuration; the CLI's `xring serve` flags map onto this
/// one-to-one.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral, see [`Server::addr`]).
    pub port: u16,
    /// Engine worker threads per request (parallelism *within* a
    /// `/batch` request; `/synth` uses one).
    pub workers: usize,
    /// Handler threads = maximum concurrently-processed requests.
    pub max_inflight: usize,
    /// Accept-queue slots between the accept loop and the handlers.
    /// 0 = rendezvous: a request is admitted only if a handler is
    /// waiting right now.
    pub queue_depth: usize,
    /// Default per-request synthesis deadline (`None` = unbounded);
    /// requests may override with `options.deadline_ms`.
    pub deadline: Option<Duration>,
    /// Default degradation policy; with
    /// [`DegradationPolicy::Allow`] the fallback chain doubles as a
    /// load-shedding knob — deadline expiry degrades instead of failing.
    pub degradation: DegradationPolicy,
    /// Byte budget for the shared design cache (`None` = unbounded).
    pub cache_bytes: Option<usize>,
    /// Maximum request body size in bytes.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 2,
            max_inflight: 4,
            queue_depth: 16,
            deadline: None,
            degradation: DegradationPolicy::Forbid,
            cache_bytes: Some(256 << 20),
            max_body_bytes: 1 << 20,
        }
    }
}

/// One admitted unit of work: the connection plus its parsed request.
struct Work {
    stream: TcpStream,
    request: Request,
    queued_at: Instant,
}

/// State shared between the accept loop and the handler pool.
struct Shared {
    engine: Engine,
    cache: Arc<DesignCache>,
    metrics: ServeMetrics,
    defaults: RequestDefaults,
    draining: AtomicBool,
    /// The last successfully-synthesized `/synth` job: the baseline an
    /// incremental re-synthesis diffs the next request's phase keys
    /// against (its ring basis seeds the warm start on ring-dirty
    /// edits). The phase artifacts themselves live in `cache`, so an
    /// edit chain keeps hitting even as this slot advances.
    last_synth: Mutex<Option<SynthesisJob>>,
}

/// A running daemon. Dropping it shuts down gracefully (equivalent to
/// [`shutdown`](Self::shutdown)).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the accept loop and handler
    /// pool. Returns once the socket is listening — requests may be sent
    /// immediately.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(match config.cache_bytes {
            Some(budget) => DesignCache::with_byte_budget(budget),
            None => DesignCache::new(),
        });
        let shared = Arc::new(Shared {
            engine: Engine::new()
                .with_workers(config.workers)
                .with_cache(Arc::clone(&cache)),
            cache,
            metrics: ServeMetrics::new(),
            defaults: RequestDefaults {
                deadline: config.deadline,
                degradation: config.degradation,
            },
            draining: AtomicBool::new(false),
            last_synth: Mutex::new(None),
        });
        let (sender, receiver) = std::sync::mpsc::sync_channel::<Work>(config.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let mut handlers = Vec::with_capacity(config.max_inflight);
        for i in 0..config.max_inflight.max(1) {
            let shared = Arc::clone(&shared);
            let receiver = Arc::clone(&receiver);
            handlers.push(
                thread::Builder::new()
                    .name(format!("serve-handler-{i}"))
                    .spawn(move || handler_loop(&shared, &receiver))?,
            );
        }
        let accept_shared = Arc::clone(&shared);
        let max_body = config.max_body_bytes;
        let accept_thread = thread::Builder::new()
            .name("serve-accept".to_owned())
            .spawn(move || accept_loop(listener, &accept_shared, sender, max_body))?;
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The bound address (resolves the actual port when configured
    /// with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's live metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// The shared design cache.
    pub fn cache(&self) -> &DesignCache {
        &self.shared.cache
    }

    /// Whether a drain has been requested (via `POST /shutdown` or
    /// [`shutdown`](Self::shutdown)). Supervisors poll this to know
    /// when to reap a daemon that was asked to stop over the wire.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, drain every admitted request,
    /// join all threads. Idempotent. Metrics remain readable afterwards
    /// for a final flush.
    pub fn shutdown(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // The accept loop may be blocked in accept(); a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread dropped the sender on exit; handlers drain
        // the queue, then their recv() errors out and they return.
        for t in self.handlers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared, sender: SyncSender<Work>, max_body: usize) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break; // the wake-up connection (or any racer) is dropped unanswered
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_write_timeout(Some(http::READ_TIMEOUT));
        let request = match http::read_request(&mut stream, max_body) {
            Ok(r) => r,
            Err(e) => {
                let (status, code) = match &e {
                    http::HttpError::TooLarge(_) => (413, "payload_too_large"),
                    _ => (400, "bad_http"),
                };
                respond(
                    shared,
                    &mut stream,
                    status,
                    "application/json",
                    &protocol::render_error(status, code, &e.to_string()),
                );
                continue;
            }
        };
        match (request.method.as_str(), request.path.as_str()) {
            // Operator endpoints answer inline and bypass admission —
            // they must work *especially* when the daemon is saturated.
            ("GET", "/healthz") => {
                let m = &shared.metrics;
                let body = format!(
                    "{{\"status\":\"ok\",\"inflight\":{},\"queued\":{},\"requests\":{},\"shed\":{}}}",
                    m.inflight(),
                    m.queued(),
                    m.requests(),
                    m.shed(),
                );
                respond(shared, &mut stream, 200, "application/json", &body);
            }
            ("GET", "/metrics") => {
                let trace = shared.metrics.to_trace(&shared.cache);
                let mut out = Vec::new();
                if trace.write_prometheus(&mut out).is_ok() {
                    let text = String::from_utf8(out).unwrap_or_default();
                    respond(shared, &mut stream, 200, "text/plain; version=0.0.4", &text);
                } else {
                    respond(
                        shared,
                        &mut stream,
                        500,
                        "application/json",
                        &protocol::render_error(500, "metrics_failed", "exposition failed"),
                    );
                }
            }
            ("POST", "/shutdown") => {
                shared.draining.store(true, Ordering::SeqCst);
                respond(
                    shared,
                    &mut stream,
                    200,
                    "application/json",
                    "{\"status\":\"draining\"}",
                );
                break;
            }
            ("POST", "/synth" | "/batch") => {
                shared.metrics.adjust_queued(1);
                match sender.try_send(Work {
                    stream,
                    request,
                    queued_at: Instant::now(),
                }) {
                    Ok(()) => {}
                    Err(TrySendError::Full(work) | TrySendError::Disconnected(work)) => {
                        shared.metrics.adjust_queued(-1);
                        let mut stream = work.stream;
                        respond(
                            shared,
                            &mut stream,
                            429,
                            "application/json",
                            &protocol::render_error(
                                429,
                                "shed",
                                "admission queue full; retry with backoff",
                            ),
                        );
                    }
                }
            }
            ("GET" | "POST" | "PUT" | "DELETE" | "HEAD" | "PATCH", path) => {
                let known = matches!(
                    path,
                    "/synth" | "/batch" | "/metrics" | "/healthz" | "/shutdown"
                );
                let (status, code) = if known {
                    (405, "method_not_allowed")
                } else {
                    (404, "not_found")
                };
                respond(
                    shared,
                    &mut stream,
                    status,
                    "application/json",
                    &protocol::render_error(status, code, &format!("{} {}", request.method, path)),
                );
            }
            (method, _) => {
                respond(
                    shared,
                    &mut stream,
                    400,
                    "application/json",
                    &protocol::render_error(400, "bad_method", method),
                );
            }
        }
    }
    // Dropping `sender` here closes the queue: handlers finish whatever
    // was admitted, then exit.
}

/// Writes a response from the accept loop and records its status.
fn respond(shared: &Shared, stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    shared.metrics.record_status(status);
    let _ = http::write_response(stream, status, content_type, body);
}

fn handler_loop(shared: &Shared, receiver: &Mutex<Receiver<Work>>) {
    loop {
        // Hold the lock only for the recv itself; a handler processing
        // a request must not block its peers' pickups.
        let work = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(mut work) = work else { return };
        let queue_us = work.queued_at.elapsed().as_micros() as u64;
        shared.metrics.adjust_queued(-1);
        shared.metrics.adjust_inflight(1);
        shared.metrics.record_queue_wait(queue_us);
        let _span = xring_obs::span_labelled("serve.request", work.request.path.clone());
        let t0 = Instant::now();
        let (status, content_type, body) = handle(shared, &work.request, queue_us, t0);
        shared
            .metrics
            .record_request_wall(t0.elapsed().as_micros() as u64);
        shared.metrics.record_status(status);
        let _ = http::write_response(&mut work.stream, status, content_type, &body);
        shared.metrics.adjust_inflight(-1);
    }
}

/// Processes one admitted request to `(status, content-type, body)`.
fn handle(
    shared: &Shared,
    request: &Request,
    queue_us: u64,
    t0: Instant,
) -> (u16, &'static str, String) {
    const JSON: &str = "application/json";
    match request.path.as_str() {
        "/synth" => {
            let job = match protocol::parse_synth(&request.body, &shared.defaults, 0) {
                Ok(job) => job,
                Err(e) => {
                    return (
                        e.status,
                        JSON,
                        protocol::render_error(e.status, e.code, &e.message),
                    )
                }
            };
            let label = job.label.clone();
            let spared = job.options.spares.any();
            // `/synth` runs through the incremental path: phase keys are
            // diffed against the last served job and clean phases replay
            // from cached artifacts (the first request seeds the store
            // by diffing against itself — a cold run).
            let prev = shared
                .last_synth
                .lock()
                .map(|g| g.clone())
                .unwrap_or_default()
                .unwrap_or_else(|| job.clone());
            let outcome = shared.engine.resynthesize(&prev, &job);
            track_outcome_metrics(shared, outcome.as_ref(), spared);
            match outcome {
                Ok(out) => {
                    if out.phases_reused > 0 {
                        shared.metrics.record_incremental();
                    }
                    if let Ok(mut slot) = shared.last_synth.lock() {
                        *slot = Some(job);
                    }
                    let wall_us = t0.elapsed().as_micros() as u64;
                    (200, JSON, protocol::render_output(&out, queue_us, wall_us))
                }
                Err(err) => {
                    let (status, body) = protocol::render_job_error(&label, &err);
                    (status, JSON, body)
                }
            }
        }
        "/batch" => {
            let jobs = match protocol::parse_batch(&request.body, &shared.defaults) {
                Ok(jobs) => jobs,
                Err(e) => {
                    return (
                        e.status,
                        JSON,
                        protocol::render_error(e.status, e.code, &e.message),
                    )
                }
            };
            let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
            let spared: Vec<bool> = jobs.iter().map(|j| j.options.spares.any()).collect();
            let batch = shared.engine.run_batch(jobs);
            let mut results = Vec::with_capacity(batch.outcomes.len());
            for ((label, &spared), outcome) in labels.iter().zip(&spared).zip(&batch.outcomes) {
                track_outcome_metrics(shared, outcome.as_ref(), spared);
                match outcome {
                    Ok(out) => {
                        results.push(protocol::render_output(
                            out,
                            queue_us,
                            out.wall.as_micros() as u64,
                        ));
                    }
                    Err(err) => {
                        results.push(protocol::render_job_error(label, err).1);
                    }
                }
            }
            let wall_us = t0.elapsed().as_micros() as u64;
            let body = format!(
                "{{\"results\":[{}],\"queue_us\":{queue_us},\"wall_us\":{wall_us}}}",
                results.join(",")
            );
            (200, JSON, body)
        }
        other => (404, JSON, protocol::render_error(404, "not_found", other)),
    }
}

/// Bumps the degradation / deadline / survivability counters for one
/// job outcome. `spared` is whether the job's options carried spares
/// (a successful outcome then implies the survivability proof passed).
fn track_outcome_metrics(
    shared: &Shared,
    outcome: Result<&xring_engine::JobOutput, &JobError>,
    spared: bool,
) {
    match outcome {
        Ok(out) => {
            if out.design.provenance.degradation != DegradationLevel::Exact {
                shared.metrics.record_degraded();
            }
            if spared {
                shared.metrics.record_spared();
            }
        }
        Err(JobError::DeadlineExceeded) => shared.metrics.record_deadline_exceeded(),
        Err(_) => {}
    }
}
