//! The daemon: accept loop, admission control, handler pool, graceful
//! shutdown.
//!
//! # Request lifecycle
//!
//! ```text
//! accept ─ read/parse HTTP ─┬─ GET /healthz, /metrics ── answered inline
//!                           └─ POST /synth, /batch ─ admission
//!                                 │ queue full → 429 (shed)
//!                                 ▼
//!                           bounded queue ─ handler thread
//!                                 ▼
//!                           cache probe → engine job → audit → response
//! ```
//!
//! Admission control is two bounds: `max_inflight` handler threads and a
//! `queue_depth`-slot queue between the accept loop and the handlers
//! ([`std::sync::mpsc::sync_channel`]). When both are full the daemon
//! sheds the request with an immediate 429 instead of letting latency
//! grow without bound — under overload, fail fast and tell the client.
//! `GET /healthz` and `GET /metrics` are answered inline by the accept
//! loop, *bypassing* admission: the operator's view into an overloaded
//! daemon must not itself be shed.
//!
//! Shutdown (`POST /shutdown` or [`Server::shutdown`]) stops accepting,
//! lets the handlers drain every already-admitted request, joins all
//! threads, and leaves the metrics readable for a final flush.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use xring_core::{DegradationLevel, DegradationPolicy};
use xring_engine::{DesignCache, Engine, JobError, SynthesisJob};
use xring_obs::{log, RequestCtx, RequestId};

use crate::flight::{fnv1a64, FlightRecorder, RequestRecord, TailSampler};
use crate::http::{self, Request};
use crate::metrics::{ServeMetrics, SloConfig, SloTracker};
use crate::protocol::{self, RequestDefaults};

/// Daemon configuration; the CLI's `xring serve` flags map onto this
/// one-to-one.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral, see [`Server::addr`]).
    pub port: u16,
    /// Engine worker threads per request (parallelism *within* a
    /// `/batch` request; `/synth` uses one).
    pub workers: usize,
    /// Handler threads = maximum concurrently-processed requests.
    pub max_inflight: usize,
    /// Accept-queue slots between the accept loop and the handlers.
    /// 0 = rendezvous: a request is admitted only if a handler is
    /// waiting right now.
    pub queue_depth: usize,
    /// Default per-request synthesis deadline (`None` = unbounded);
    /// requests may override with `options.deadline_ms`.
    pub deadline: Option<Duration>,
    /// Default degradation policy; with
    /// [`DegradationPolicy::Allow`] the fallback chain doubles as a
    /// load-shedding knob — deadline expiry degrades instead of failing.
    pub degradation: DegradationPolicy,
    /// Byte budget for the shared design cache (`None` = unbounded).
    pub cache_bytes: Option<usize>,
    /// Maximum request body size in bytes.
    pub max_body_bytes: usize,
    /// Service-level objectives (availability + latency target); also
    /// sets the flight recorder's "slow" threshold for tail-sampling.
    pub slo: SloConfig,
    /// Flight-recorder ring capacity (most recent request records).
    pub flight_capacity: usize,
    /// Tail-sampler capacity (full span traces of unusual requests).
    pub tail_capacity: usize,
    /// Postmortem file: the flight recorder and retained traces are
    /// dumped here on drain and on a handler panic (`None` = disabled).
    pub postmortem: Option<PathBuf>,
    /// Seed for deterministic request-id minting (ids derive from this,
    /// a per-process request counter, and a per-connection nonce).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 2,
            max_inflight: 4,
            queue_depth: 16,
            deadline: None,
            degradation: DegradationPolicy::Forbid,
            cache_bytes: Some(256 << 20),
            max_body_bytes: 1 << 20,
            slo: SloConfig::default(),
            flight_capacity: 256,
            tail_capacity: 32,
            postmortem: None,
            seed: 0x5eed_0000_0000_0001,
        }
    }
}

/// One admitted unit of work: the connection, its parsed request, and
/// the request's trace context.
struct Work {
    stream: TcpStream,
    request: Request,
    queued_at: Instant,
    ctx: RequestCtx,
}

/// State shared between the accept loop and the handler pool.
struct Shared {
    engine: Engine,
    cache: Arc<DesignCache>,
    metrics: ServeMetrics,
    defaults: RequestDefaults,
    slo: SloTracker,
    flight: FlightRecorder,
    tail: TailSampler,
    postmortem: Option<PathBuf>,
    /// Seed for request-id minting (see [`ServeConfig::seed`]).
    seed: u64,
    /// Monotonic request counter feeding the id mint.
    req_seq: AtomicU64,
    draining: AtomicBool,
    /// The last successfully-synthesized `/synth` job: the baseline an
    /// incremental re-synthesis diffs the next request's phase keys
    /// against (its ring basis seeds the warm start on ring-dirty
    /// edits). The phase artifacts themselves live in `cache`, so an
    /// edit chain keeps hitting even as this slot advances.
    last_synth: Mutex<Option<SynthesisJob>>,
}

/// A running daemon. Dropping it shuts down gracefully (equivalent to
/// [`shutdown`](Self::shutdown)).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the accept loop and handler
    /// pool. Returns once the socket is listening — requests may be sent
    /// immediately.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(match config.cache_bytes {
            Some(budget) => DesignCache::with_byte_budget(budget),
            None => DesignCache::new(),
        });
        let shared = Arc::new(Shared {
            engine: Engine::new()
                .with_workers(config.workers)
                .with_cache(Arc::clone(&cache)),
            cache,
            metrics: ServeMetrics::new(),
            defaults: RequestDefaults {
                deadline: config.deadline,
                degradation: config.degradation,
            },
            slo: SloTracker::new(config.slo),
            flight: FlightRecorder::new(config.flight_capacity),
            tail: TailSampler::new(config.tail_capacity),
            postmortem: config.postmortem.clone(),
            seed: config.seed,
            req_seq: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            last_synth: Mutex::new(None),
        });
        let (sender, receiver) = std::sync::mpsc::sync_channel::<Work>(config.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let mut handlers = Vec::with_capacity(config.max_inflight);
        for i in 0..config.max_inflight.max(1) {
            let shared = Arc::clone(&shared);
            let receiver = Arc::clone(&receiver);
            handlers.push(
                thread::Builder::new()
                    .name(format!("serve-handler-{i}"))
                    .spawn(move || handler_loop(&shared, &receiver))?,
            );
        }
        let accept_shared = Arc::clone(&shared);
        let max_body = config.max_body_bytes;
        let accept_thread = thread::Builder::new()
            .name("serve-accept".to_owned())
            .spawn(move || accept_loop(listener, &accept_shared, sender, max_body))?;
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The bound address (resolves the actual port when configured
    /// with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's live metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// The shared design cache.
    pub fn cache(&self) -> &DesignCache {
        &self.shared.cache
    }

    /// The flight recorder (recent request records).
    pub fn flight(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// The tail-sampler (retained full traces of unusual requests).
    pub fn tail(&self) -> &TailSampler {
        &self.shared.tail
    }

    /// The SLO tracker.
    pub fn slo(&self) -> &SloTracker {
        &self.shared.slo
    }

    /// Whether a drain has been requested (via `POST /shutdown` or
    /// [`shutdown`](Self::shutdown)). Supervisors poll this to know
    /// when to reap a daemon that was asked to stop over the wire.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, drain every admitted request,
    /// join all threads. Idempotent. Metrics remain readable afterwards
    /// for a final flush.
    pub fn shutdown(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // The accept loop may be blocked in accept(); a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread dropped the sender on exit; handlers drain
        // the queue, then their recv() errors out and they return.
        for t in self.handlers.drain(..) {
            let _ = t.join();
        }
        write_postmortem(&self.shared, "drain");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Derives the request id: an inbound `traceparent` trace-id wins, then
/// an inbound 32-hex `x-request-id`, then a deterministic mint from the
/// process seed, the request counter and the connection nonce.
fn mint_request_id(shared: &Shared, request: &Request, nonce: u64) -> RequestId {
    if let Some(tp) = request.header("traceparent") {
        // W3C traceparent: <2 hex ver>-<32 hex trace-id>-<16 hex span>-<2 hex flags>
        if let Some(id) = tp.split('-').nth(1).and_then(RequestId::parse_hex) {
            return id;
        }
    }
    if let Some(id) = request
        .header("x-request-id")
        .and_then(RequestId::parse_hex)
    {
        return id;
    }
    let seq = shared.req_seq.fetch_add(1, Ordering::Relaxed);
    RequestId::mint(shared.seed, seq, nonce)
}

fn accept_loop(listener: TcpListener, shared: &Shared, sender: SyncSender<Work>, max_body: usize) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break; // the wake-up connection (or any racer) is dropped unanswered
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_write_timeout(Some(http::READ_TIMEOUT));
        // The connection nonce folds the peer's ephemeral port into the
        // minted id, so ids differ across connections even if the
        // request counter were ever reset.
        let nonce = stream.peer_addr().map_or(0, |a| u64::from(a.port()));
        let request = match http::read_request(&mut stream, max_body) {
            Ok(r) => r,
            Err(e) => {
                let (status, code) = match &e {
                    http::HttpError::TooLarge(_) => (413, "payload_too_large"),
                    _ => (400, "bad_http"),
                };
                log::debug(
                    "serve",
                    "rejected unreadable request",
                    &[("error", &e.to_string())],
                );
                respond(
                    shared,
                    &mut stream,
                    status,
                    "application/json",
                    &protocol::render_error(status, code, &e.to_string()),
                    None,
                );
                continue;
            }
        };
        let req_id = mint_request_id(shared, &request, nonce);
        let req_hex = req_id.to_hex();
        match (request.method.as_str(), request.path.as_str()) {
            // Operator endpoints answer inline and bypass admission —
            // they must work *especially* when the daemon is saturated.
            ("GET", "/healthz") => {
                let m = &shared.metrics;
                let body = format!(
                    "{{\"status\":\"ok\",\"inflight\":{},\"queued\":{},\"requests\":{},\"shed\":{},\"uptime_s\":{},\"version\":\"{}\"}}",
                    m.inflight(),
                    m.queued(),
                    m.requests(),
                    m.shed(),
                    m.uptime_s(),
                    env!("CARGO_PKG_VERSION"),
                );
                respond(
                    shared,
                    &mut stream,
                    200,
                    "application/json",
                    &body,
                    Some(&req_hex),
                );
            }
            ("GET", "/metrics") => {
                let mut trace = shared.metrics.to_trace(&shared.cache);
                shared.slo.append_to(&mut trace);
                let mut out = Vec::new();
                if trace.write_prometheus(&mut out).is_ok() {
                    let text = String::from_utf8(out).unwrap_or_default();
                    respond(
                        shared,
                        &mut stream,
                        200,
                        "text/plain; version=0.0.4",
                        &text,
                        Some(&req_hex),
                    );
                } else {
                    respond(
                        shared,
                        &mut stream,
                        500,
                        "application/json",
                        &protocol::render_error(500, "metrics_failed", "exposition failed"),
                        Some(&req_hex),
                    );
                }
            }
            ("GET", "/debug/requests") => {
                let records: Vec<String> = shared
                    .flight
                    .snapshot()
                    .iter()
                    .map(RequestRecord::to_json)
                    .collect();
                let body = format!(
                    "{{\"capacity\":{},\"pushed\":{},\"records\":[{}]}}",
                    shared.flight.capacity(),
                    shared.flight.pushed(),
                    records.join(","),
                );
                respond(
                    shared,
                    &mut stream,
                    200,
                    "application/json",
                    &body,
                    Some(&req_hex),
                );
            }
            ("GET", "/debug/slow") => {
                let entries: Vec<String> = shared
                    .tail
                    .ids()
                    .iter()
                    .map(|id| {
                        let record = shared
                            .flight
                            .find(id)
                            .map_or_else(|| "null".to_owned(), |r| r.to_json());
                        let trace = shared
                            .tail
                            .get(id)
                            .map_or_else(|| "[]".to_owned(), |t| jsonl_to_array(&t));
                        format!("{{\"record\":{record},\"trace\":{trace}}}")
                    })
                    .collect();
                let body = format!(
                    "{{\"considered\":{},\"retained\":{},\"requests\":[{}]}}",
                    shared.tail.considered(),
                    shared.tail.retained(),
                    entries.join(","),
                );
                respond(
                    shared,
                    &mut stream,
                    200,
                    "application/json",
                    &body,
                    Some(&req_hex),
                );
            }
            ("GET", path) if path.starts_with("/debug/requests/") => {
                let id = &path["/debug/requests/".len()..];
                match shared.flight.find(id) {
                    Some(record) => {
                        let trace = shared
                            .tail
                            .get(id)
                            .map_or_else(|| "null".to_owned(), |t| jsonl_to_array(&t));
                        let body = format!("{{\"record\":{},\"trace\":{trace}}}", record.to_json());
                        respond(
                            shared,
                            &mut stream,
                            200,
                            "application/json",
                            &body,
                            Some(&req_hex),
                        );
                    }
                    None => respond(
                        shared,
                        &mut stream,
                        404,
                        "application/json",
                        &protocol::render_error(404, "unknown_request", id),
                        Some(&req_hex),
                    ),
                }
            }
            ("POST", "/shutdown") => {
                shared.draining.store(true, Ordering::SeqCst);
                log::info("serve", "shutdown requested over the wire", &[]);
                respond(
                    shared,
                    &mut stream,
                    200,
                    "application/json",
                    "{\"status\":\"draining\"}",
                    Some(&req_hex),
                );
                break;
            }
            ("POST", "/synth" | "/batch") => {
                shared.metrics.adjust_queued(1);
                let ctx = RequestCtx::new(req_id);
                match sender.try_send(Work {
                    stream,
                    request,
                    queued_at: Instant::now(),
                    ctx,
                }) {
                    Ok(()) => {}
                    Err(TrySendError::Full(work) | TrySendError::Disconnected(work)) => {
                        shared.metrics.adjust_queued(-1);
                        let mut stream = work.stream;
                        log::warn(
                            "serve",
                            "request shed: admission queue full",
                            &[("req", &req_hex), ("route", &work.request.path)],
                        );
                        respond(
                            shared,
                            &mut stream,
                            429,
                            "application/json",
                            &protocol::render_error(
                                429,
                                "shed",
                                "admission queue full; retry with backoff",
                            ),
                            Some(&req_hex),
                        );
                        shared.slo.record(429, 0, true);
                        let record = RequestRecord {
                            id: req_hex.clone(),
                            route: work.request.path.clone(),
                            spec_hash: fnv1a64(work.request.body.as_bytes()),
                            status: 429,
                            degradation: None,
                            queue_us: 0,
                            wall_us: 0,
                            phases: Vec::new(),
                            phases_reused: 0,
                            audit_clean: None,
                            slow: false,
                            degraded: false,
                            shed: true,
                            errored: false,
                            sampled: false,
                        };
                        // A shed request never entered a handler, so its
                        // trace is empty — the record itself is the story.
                        let sampled = shared.tail.offer(&record, "");
                        shared.flight.push(RequestRecord { sampled, ..record });
                    }
                }
            }
            ("GET" | "POST" | "PUT" | "DELETE" | "HEAD" | "PATCH", path) => {
                let known = matches!(
                    path,
                    "/synth"
                        | "/batch"
                        | "/metrics"
                        | "/healthz"
                        | "/shutdown"
                        | "/debug/requests"
                        | "/debug/slow"
                );
                let (status, code) = if known {
                    (405, "method_not_allowed")
                } else {
                    (404, "not_found")
                };
                respond(
                    shared,
                    &mut stream,
                    status,
                    "application/json",
                    &protocol::render_error(status, code, &format!("{} {}", request.method, path)),
                    Some(&req_hex),
                );
            }
            (method, _) => {
                respond(
                    shared,
                    &mut stream,
                    400,
                    "application/json",
                    &protocol::render_error(400, "bad_method", method),
                    Some(&req_hex),
                );
            }
        }
    }
    // Dropping `sender` here closes the queue: handlers finish whatever
    // was admitted, then exit.
}

/// Renders a JSONL document (one JSON object per line) as a JSON array.
fn jsonl_to_array(jsonl: &str) -> String {
    let lines: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
    format!("[{}]", lines.join(","))
}

/// Writes a response from the accept loop and records its status. When
/// a request id is known it is echoed as `x-request-id` and — for JSON
/// object bodies — spliced into the body as well.
fn respond(
    shared: &Shared,
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    req_id: Option<&str>,
) {
    shared.metrics.record_status(status);
    match req_id {
        Some(id) => {
            let body = if content_type == "application/json" {
                protocol::with_request_id(body.to_owned(), id)
            } else {
                body.to_owned()
            };
            let _ = http::write_response_with(
                stream,
                status,
                content_type,
                &[("x-request-id", id)],
                &body,
            );
        }
        None => {
            let _ = http::write_response(stream, status, content_type, body);
        }
    }
}

/// What one admitted request produced: the response itself plus the
/// classification facts the flight recorder and SLO tracker need.
struct HandlerOutcome {
    status: u16,
    content_type: &'static str,
    body: String,
    /// Degradation level of the served design(s), when one was served.
    degradation: Option<String>,
    /// Pipeline phases replayed from cached artifacts (summed for `/batch`).
    phases_reused: u64,
    /// Audit verdict of the served design(s); `None` when none was served.
    audit_clean: Option<bool>,
}

impl HandlerOutcome {
    /// A JSON error response with no design-level facts attached.
    fn error(status: u16, body: String) -> Self {
        HandlerOutcome {
            status,
            content_type: "application/json",
            body,
            degradation: None,
            phases_reused: 0,
            audit_clean: None,
        }
    }
}

fn handler_loop(shared: &Shared, receiver: &Mutex<Receiver<Work>>) {
    loop {
        // Hold the lock only for the recv itself; a handler processing
        // a request must not block its peers' pickups.
        let work = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(work) = work else { return };
        let Work {
            mut stream,
            request,
            queued_at,
            ctx,
        } = work;
        let queue_us = queued_at.elapsed().as_micros() as u64;
        shared.metrics.adjust_queued(-1);
        shared.metrics.adjust_inflight(1);
        shared.metrics.record_queue_wait(queue_us);
        let req_hex = ctx.id().to_hex();
        let route = request.path.clone();
        let spec_hash = fnv1a64(request.body.as_bytes());
        let t0 = Instant::now();
        let result = {
            // Attach the request context so every span/counter the
            // pipeline emits — including from engine worker threads —
            // lands in this request's trace.
            let _scope = ctx.attach();
            let span = xring_obs::span_labelled("serve.request", route.clone());
            let result = catch_unwind(AssertUnwindSafe(|| handle(shared, &request, queue_us, t0)));
            drop(span);
            result
        };
        let wall_us = t0.elapsed().as_micros() as u64;
        let (outcome, panicked) = match result {
            Ok(outcome) => (outcome, false),
            Err(_) => {
                shared.metrics.record_handler_panic();
                log::error(
                    "serve",
                    "handler panicked; responding 500",
                    &[("req", &req_hex), ("route", &route)],
                );
                let body = protocol::render_error(
                    500,
                    "handler_panic",
                    "handler panicked; see the flight recorder",
                );
                (HandlerOutcome::error(500, body), true)
            }
        };
        shared.metrics.record_request_wall(wall_us);
        respond(
            shared,
            &mut stream,
            outcome.status,
            outcome.content_type,
            &outcome.body,
            Some(&req_hex),
        );
        shared.metrics.adjust_inflight(-1);

        // Post-response accounting: the client is not kept waiting on
        // the flight recorder or SLO bookkeeping.
        let trace = ctx.finish();
        let mut phases: BTreeMap<String, u64> = BTreeMap::new();
        for span in &trace.spans {
            *phases.entry(span.name.to_owned()).or_default() += span.dur_ns / 1_000;
        }
        let slow = wall_us > shared.slo.config().latency_target.as_micros() as u64;
        let degraded = outcome.degradation.as_deref().is_some_and(|d| d != "exact");
        let errored = outcome.status >= 500;
        let record = RequestRecord {
            id: req_hex.clone(),
            route,
            spec_hash,
            status: outcome.status,
            degradation: outcome.degradation,
            queue_us,
            wall_us,
            phases: phases.into_iter().collect(),
            phases_reused: outcome.phases_reused,
            audit_clean: outcome.audit_clean,
            slow,
            degraded,
            shed: false,
            errored,
            sampled: false,
        };
        let trace_jsonl = if record.tail_worthy() {
            let mut buf = Vec::new();
            let _ = trace.write_jsonl(&mut buf);
            String::from_utf8(buf).unwrap_or_default()
        } else {
            String::new()
        };
        let sampled = shared.tail.offer(&record, &trace_jsonl);
        shared.flight.push(RequestRecord { sampled, ..record });
        shared.slo.record(outcome.status, wall_us, false);
        if panicked {
            write_postmortem(shared, "handler_panic");
        }
    }
}

/// Processes one admitted request to a [`HandlerOutcome`].
fn handle(shared: &Shared, request: &Request, queue_us: u64, t0: Instant) -> HandlerOutcome {
    const JSON: &str = "application/json";
    match request.path.as_str() {
        "/synth" => {
            let job = match protocol::parse_synth(&request.body, &shared.defaults, 0) {
                Ok(job) => job,
                Err(e) => {
                    return HandlerOutcome::error(
                        e.status,
                        protocol::render_error(e.status, e.code, &e.message),
                    )
                }
            };
            let label = job.label.clone();
            let spared = job.options.spares.any();
            // `/synth` runs through the incremental path: phase keys are
            // diffed against the last served job and clean phases replay
            // from cached artifacts (the first request seeds the store
            // by diffing against itself — a cold run).
            let prev = shared
                .last_synth
                .lock()
                .map(|g| g.clone())
                .unwrap_or_default()
                .unwrap_or_else(|| job.clone());
            let outcome = shared.engine.resynthesize(&prev, &job);
            track_outcome_metrics(shared, outcome.as_ref(), spared);
            match outcome {
                Ok(out) => {
                    if out.phases_reused > 0 {
                        shared.metrics.record_incremental();
                    }
                    if let Ok(mut slot) = shared.last_synth.lock() {
                        *slot = Some(job);
                    }
                    let wall_us = t0.elapsed().as_micros() as u64;
                    HandlerOutcome {
                        status: 200,
                        content_type: JSON,
                        body: protocol::render_output(&out, queue_us, wall_us),
                        degradation: Some(out.design.provenance.degradation.as_str().to_owned()),
                        phases_reused: out.phases_reused as u64,
                        audit_clean: Some(out.design.provenance.audit.is_clean()),
                    }
                }
                Err(err) => {
                    let (status, body) = protocol::render_job_error(&label, &err);
                    HandlerOutcome::error(status, body)
                }
            }
        }
        "/batch" => {
            let jobs = match protocol::parse_batch(&request.body, &shared.defaults) {
                Ok(jobs) => jobs,
                Err(e) => {
                    return HandlerOutcome::error(
                        e.status,
                        protocol::render_error(e.status, e.code, &e.message),
                    )
                }
            };
            let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
            let spared: Vec<bool> = jobs.iter().map(|j| j.options.spares.any()).collect();
            let batch = shared.engine.run_batch(jobs);
            let mut results = Vec::with_capacity(batch.outcomes.len());
            // Batch-level facts aggregate pessimistically: the worst
            // degradation across jobs, phases reused summed, and the
            // audit clean only when every served design is clean.
            let rank = |level: DegradationLevel| match level {
                DegradationLevel::Exact => 0u8,
                DegradationLevel::RetriedPerturbed => 1,
                DegradationLevel::Heuristic => 2,
            };
            let mut worst_degradation: Option<DegradationLevel> = None;
            let mut phases_reused = 0u64;
            let mut audit_clean: Option<bool> = None;
            for ((label, &spared), outcome) in labels.iter().zip(&spared).zip(&batch.outcomes) {
                track_outcome_metrics(shared, outcome.as_ref(), spared);
                match outcome {
                    Ok(out) => {
                        let level = out.design.provenance.degradation;
                        if worst_degradation.is_none_or(|w| rank(level) > rank(w)) {
                            worst_degradation = Some(level);
                        }
                        phases_reused += out.phases_reused as u64;
                        let clean = out.design.provenance.audit.is_clean();
                        audit_clean = Some(audit_clean.unwrap_or(true) && clean);
                        results.push(protocol::render_output(
                            out,
                            queue_us,
                            out.wall.as_micros() as u64,
                        ));
                    }
                    Err(err) => {
                        results.push(protocol::render_job_error(label, err).1);
                    }
                }
            }
            let wall_us = t0.elapsed().as_micros() as u64;
            let body = format!(
                "{{\"results\":[{}],\"queue_us\":{queue_us},\"wall_us\":{wall_us}}}",
                results.join(",")
            );
            HandlerOutcome {
                status: 200,
                content_type: JSON,
                body,
                degradation: worst_degradation.map(|l| l.as_str().to_owned()),
                phases_reused,
                audit_clean,
            }
        }
        other => HandlerOutcome::error(404, protocol::render_error(404, "not_found", other)),
    }
}

/// Bumps the degradation / deadline / survivability counters for one
/// job outcome. `spared` is whether the job's options carried spares
/// (a successful outcome then implies the survivability proof passed).
fn track_outcome_metrics(
    shared: &Shared,
    outcome: Result<&xring_engine::JobOutput, &JobError>,
    spared: bool,
) {
    match outcome {
        Ok(out) => {
            if out.design.provenance.degradation != DegradationLevel::Exact {
                shared.metrics.record_degraded();
            }
            if spared {
                shared.metrics.record_spared();
            }
        }
        Err(JobError::DeadlineExceeded) => shared.metrics.record_deadline_exceeded(),
        Err(_) => {}
    }
}

/// Dumps the flight recorder and every retained tail trace to the
/// configured postmortem path as JSONL: one meta line, then one line
/// per in-ring record, then one line per retained trace. Called on
/// drain and after a handler panic; a missing path is a no-op.
fn write_postmortem(shared: &Shared, reason: &str) {
    let Some(path) = &shared.postmortem else {
        return;
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"kind\":\"postmortem\",\"reason\":\"{}\",\"uptime_s\":{},\"pushed\":{},\"retained\":{}}}\n",
        xring_obs::json_escape(reason),
        shared.metrics.uptime_s(),
        shared.flight.pushed(),
        shared.tail.retained(),
    ));
    for record in shared.flight.snapshot() {
        out.push_str(&record.to_json());
        out.push('\n');
    }
    for id in shared.tail.ids() {
        if let Some(trace) = shared.tail.get(&id) {
            out.push_str(&format!(
                "{{\"kind\":\"trace\",\"req\":\"{}\",\"spans\":{}}}\n",
                xring_obs::json_escape(&id),
                jsonl_to_array(&trace),
            ));
        }
    }
    match std::fs::write(path, out) {
        Ok(()) => log::info(
            "serve",
            "postmortem written",
            &[("reason", reason), ("path", &path.display().to_string())],
        ),
        Err(e) => log::error(
            "serve",
            "postmortem write failed",
            &[("reason", reason), ("error", &e.to_string())],
        ),
    }
}
