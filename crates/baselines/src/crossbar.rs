//! Analytic models of the crossbar WRONoC routers of Table I.
//!
//! The paper compares XRing against λ-router, GWOR and Light as
//! synthesized by three physical-design tools (Proton+ \[15\], PlanarONoC
//! \[16\], ToPro \[3\]). Reproducing those tools is out of scope (each is its
//! own paper); per DESIGN.md §2 we substitute *structural models*: the
//! logical-topology properties (`#wl`, MRR events on the worst path,
//! internal crossings) are exact topology facts, while the physical
//! quantities (worst path length, access-routing crossings) use per-tool
//! layout factors calibrated against the topologies' published behaviour:
//!
//! * **Proton+** places the router block centrally and routes access
//!   waveguides directly — short-ish but crossing-heavy
//!   (`≈ 0.75·(N−2)²` crossings on the worst path).
//! * **PlanarONoC** planarizes — almost crossing-free (`≈ N−1`) but with
//!   roughly doubled path lengths.
//! * **ToPro** projects the logical topology — balanced lengths with
//!   `O(N)` crossings.
//!
//! Ring-router rows in the same tables come from the full implementations
//! in this workspace; only these crossbar rows are analytic.

use std::time::Duration;
use xring_core::NetworkSpec;
use xring_phot::{LossParams, PathElement, RouterReport};

/// Crossbar logical topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossbarKind {
    /// λ-router \[6\]: N stages of parallel switching elements, no internal
    /// waveguide crossings, `#wl = N`.
    LambdaRouter,
    /// GWOR \[7\]: grid of waveguides with CSEs, `#wl = N−1`.
    Gwor,
    /// Light \[9\]: the scalable low-MRR topology, `#wl = N−1`.
    Light,
}

impl CrossbarKind {
    /// Wavelengths required for N-node all-to-all traffic.
    pub fn wavelengths(self, n: usize) -> usize {
        match self {
            CrossbarKind::LambdaRouter => n,
            CrossbarKind::Gwor | CrossbarKind::Light => n - 1,
        }
    }

    /// Internal waveguide crossings on the worst-case signal path.
    pub fn internal_crossings(self, n: usize) -> usize {
        match self {
            CrossbarKind::LambdaRouter => 0,
            CrossbarKind::Gwor => n + 2,
            CrossbarKind::Light => n,
        }
    }

    /// Off-resonance MRRs passed on the worst-case signal path.
    pub fn worst_throughs(self, n: usize) -> usize {
        match self {
            CrossbarKind::LambdaRouter => 2 * n,
            CrossbarKind::Gwor => n,
            CrossbarKind::Light => n / 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CrossbarKind::LambdaRouter => "λ-router",
            CrossbarKind::Gwor => "GWOR",
            CrossbarKind::Light => "Light",
        }
    }
}

/// Physical-design tool style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutStyle {
    /// Proton+ \[15\]: central placement, direct (crossing-heavy) access.
    ProtonPlus,
    /// PlanarONoC \[16\]: planarized, crossing-minimal, long detours.
    PlanarOnoc,
    /// ToPro \[3\]: topology projection, balanced.
    ToPro,
}

impl LayoutStyle {
    /// Worst-path length as a multiple of the node-grid tour perimeter.
    pub fn length_factor(self) -> f64 {
        match self {
            LayoutStyle::ProtonPlus => 1.06,
            LayoutStyle::PlanarOnoc => 2.0,
            LayoutStyle::ToPro => 1.12,
        }
    }

    /// Access-routing crossings added to the worst path.
    pub fn access_crossings(self, n: usize) -> usize {
        match self {
            LayoutStyle::ProtonPlus => (3 * (n - 2) * (n - 2)) / 4,
            LayoutStyle::PlanarOnoc => n - 1,
            LayoutStyle::ToPro => 0,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LayoutStyle::ProtonPlus => "Proton+",
            LayoutStyle::PlanarOnoc => "PlanarONoC",
            LayoutStyle::ToPro => "ToPro",
        }
    }
}

/// Approximate minimum tour perimeter of the node grid (used as the
/// length unit of the layout factors): twice the bounding-box half
/// perimeter is exact for the paper's row-dominated grids.
fn grid_perimeter_um(net: &NetworkSpec) -> i64 {
    use xring_core::heuristics::{heuristic_tour, tour_length};
    tour_length(net, &heuristic_tour(net))
}

/// Builds the Table-I row for a `(tool, router)` pair on `net`.
///
/// The crossing count is `internal + access` (PlanarONoC planarizes the
/// internal crossings too, so there only the access estimate remains).
pub fn crossbar_report(
    kind: CrossbarKind,
    style: LayoutStyle,
    net: &NetworkSpec,
    loss: &LossParams,
) -> RouterReport {
    let n = net.len();
    let length_um = (grid_perimeter_um(net) as f64 * style.length_factor()) as i64;
    let crossings = match style {
        LayoutStyle::PlanarOnoc => style.access_crossings(n),
        _ => kind.internal_crossings(n) + style.access_crossings(n),
    };
    let throughs = kind.worst_throughs(n);

    let mut trace = vec![PathElement::Propagate { length_um }];
    trace.extend(std::iter::repeat_n(PathElement::Crossing, crossings));
    trace.extend(std::iter::repeat_n(PathElement::MrrThrough, throughs));
    trace.push(PathElement::MrrDrop);
    trace.push(PathElement::Photodetector);
    let il = xring_phot::insertion_loss_db(&trace, loss);

    RouterReport {
        label: format!("{}/{}", style.name(), kind.name()),
        num_wavelengths: kind.wavelengths(n),
        worst_il_db: il,
        worst_path_len_mm: length_um as f64 / 1_000.0,
        worst_path_crossings: crossings,
        total_power_w: None,
        noisy_signal_count: None,
        worst_snr_db: None,
        signal_count: net.signal_count(),
        synthesis_time: Duration::ZERO, // tool runtimes are not reproducible
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_counts_match_topologies() {
        assert_eq!(CrossbarKind::LambdaRouter.wavelengths(8), 8);
        assert_eq!(CrossbarKind::Gwor.wavelengths(8), 7);
        assert_eq!(CrossbarKind::Light.wavelengths(16), 15);
    }

    #[test]
    fn proton_plus_has_most_crossings() {
        let net = NetworkSpec::proton_8();
        let loss = LossParams::proton_plus();
        let p = crossbar_report(
            CrossbarKind::LambdaRouter,
            LayoutStyle::ProtonPlus,
            &net,
            &loss,
        );
        let pl = crossbar_report(
            CrossbarKind::LambdaRouter,
            LayoutStyle::PlanarOnoc,
            &net,
            &loss,
        );
        let t = crossbar_report(CrossbarKind::Gwor, LayoutStyle::ToPro, &net, &loss);
        assert!(p.worst_path_crossings > pl.worst_path_crossings);
        assert!(p.worst_path_crossings > t.worst_path_crossings);
    }

    #[test]
    fn planaronoc_has_longest_paths() {
        let net = NetworkSpec::proton_16();
        let loss = LossParams::proton_plus();
        let p = crossbar_report(
            CrossbarKind::LambdaRouter,
            LayoutStyle::ProtonPlus,
            &net,
            &loss,
        );
        let pl = crossbar_report(
            CrossbarKind::LambdaRouter,
            LayoutStyle::PlanarOnoc,
            &net,
            &loss,
        );
        assert!(pl.worst_path_len_mm > p.worst_path_len_mm);
    }

    #[test]
    fn crossbars_lose_to_a_crossing_free_ring() {
        // The headline Table-I comparison: any crossbar row has higher
        // worst-case insertion loss than a ring with zero crossings and a
        // sub-perimeter worst path.
        let net = NetworkSpec::proton_16();
        let loss = LossParams::proton_plus();
        for kind in [
            CrossbarKind::LambdaRouter,
            CrossbarKind::Gwor,
            CrossbarKind::Light,
        ] {
            for style in [
                LayoutStyle::ProtonPlus,
                LayoutStyle::PlanarOnoc,
                LayoutStyle::ToPro,
            ] {
                let r = crossbar_report(kind, style, &net, &loss);
                assert!(r.worst_il_db > 1.0, "{} unexpectedly cheap", r.label);
                assert!(r.worst_path_len_mm > 0.0);
            }
        }
    }

    #[test]
    fn report_has_no_power_or_noise_columns() {
        let net = NetworkSpec::proton_8();
        let r = crossbar_report(
            CrossbarKind::Gwor,
            LayoutStyle::ToPro,
            &net,
            &LossParams::proton_plus(),
        );
        assert_eq!(r.total_power_w, None);
        assert_eq!(r.noisy_signal_count, None);
        assert_eq!(r.worst_snr_db, None);
    }
}
