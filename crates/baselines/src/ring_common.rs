//! Shared realization for baseline ring routers with a **crossing PDN**.
//!
//! ORing's PDN \[17\] (also used for ORNoC in the paper's Table II) routes
//! power from outside the concentric ring stack down to each sender: a
//! branch supplying a sender on ring waveguide `w` must cross every ring
//! waveguide outside `w`. Each such crossing costs crossing loss on the
//! supply path **and** leaks laser light (all wavelengths) onto the
//! crossed data waveguide, where it travels to every same-wavelength
//! receiver downstream — this is what drives the large `#s` and low
//! `SNR_w` of the baselines in Tables II–III.

use std::time::Duration;
use xring_core::layout::{Hop, LayoutModel, NoiseSource, Station, StationIdx, Waveguide};
use xring_core::mapping::{MappingPlan, RouteKind};
use xring_core::{design_pdn, Direction, NetworkSpec, RingCycle, RingSpacing, ShortcutPlan};
use xring_geom::Point;
use xring_phot::{CrosstalkParams, LossParams, PowerParams, RouterReport, SignalId, Wavelength};

/// A synthesized baseline ring router.
#[derive(Debug, Clone)]
pub struct BaselineDesign {
    /// The ring used.
    pub cycle: RingCycle,
    /// The signal mapping.
    pub plan: MappingPlan,
    /// The realized layout (with crossing PDN when enabled).
    pub layout: LayoutModel,
    /// Synthesis wall-clock time.
    pub elapsed: Duration,
    /// Structural audit of the produced design (same invariants the
    /// XRing pipeline enforces on its own output). Baselines are built
    /// for comparison tables; a baseline that silently violated an
    /// invariant would corrupt every table it appears in.
    pub audit: xring_core::AuditReport,
}

impl BaselineDesign {
    /// Evaluates into a table row.
    pub fn report(
        &self,
        label: impl Into<String>,
        loss: &LossParams,
        xtalk: Option<&CrosstalkParams>,
        power: &PowerParams,
    ) -> RouterReport {
        self.layout
            .evaluate(label, loss, xtalk, power, self.elapsed)
    }
}

/// Lowers a ring-only mapping (no shortcuts) to a layout; when
/// `crossing_pdn` is set, the comb PDN described above is woven in.
pub fn realize_ring_baseline(
    net: &NetworkSpec,
    cycle: &RingCycle,
    plan: &MappingPlan,
    loss: &LossParams,
    xtalk: &CrosstalkParams,
    crossing_pdn: bool,
    spacing: RingSpacing,
) -> LayoutModel {
    let mut layout = LayoutModel::new();
    let n = cycle.len();
    let perimeter = cycle.perimeter().max(1);
    let pair_spacing = spacing.spacing_um(n);

    // Splitter-tree losses (shared with XRing's PDN model); the crossing
    // penalties are added on top below.
    let pdn = crossing_pdn.then(|| {
        design_pdn(
            net,
            cycle,
            plan,
            &ShortcutPlan::empty(),
            loss,
            Point::new(-1_000, -1_000),
        )
    });

    // Which cycle positions send on which waveguide.
    let sends_on: Vec<Vec<bool>> = plan
        .ring_waveguides
        .iter()
        .map(|wg| {
            let mut v = vec![false; n];
            for lane in &wg.lanes {
                for arc in &lane.arcs {
                    v[arc.from_pos] = true;
                }
            }
            v
        })
        .collect();
    let num_wg = plan.ring_waveguides.len();
    // All wavelengths any waveguide carries (the PDN supplies all of them).
    let wavelengths_of = |wi: usize| -> Vec<Wavelength> {
        (0..plan.ring_waveguides[wi].lanes.len())
            .map(|li| Wavelength::new(li as u16))
            .collect()
    };

    let mut tap_idx: Vec<std::collections::HashMap<u32, StationIdx>> = Vec::new();
    let mut sender_idx: Vec<std::collections::HashMap<u32, StationIdx>> = Vec::new();

    for (wi, wg) in plan.ring_waveguides.iter().enumerate() {
        let mut stations: Vec<Station> = Vec::new();
        let mut taps = std::collections::HashMap::new();
        let mut senders = std::collections::HashMap::new();

        let mut drops_at: Vec<Vec<(Wavelength, SignalId)>> = vec![Vec::new(); n];
        for (li, lane) in wg.lanes.iter().enumerate() {
            for arc in &lane.arcs {
                drops_at[arc.to_pos]
                    .push((Wavelength::new(li as u16), SignalId(arc.signal as u32)));
            }
        }

        let seq: Vec<usize> = match wg.direction {
            Direction::Cw => (0..n).collect(),
            Direction::Ccw => (0..n).map(|k| (n - k) % n).collect(),
        };
        let extra_perimeter = 8 * pair_spacing * wi as i64;

        for (k, &pos) in seq.iter().enumerate() {
            let node = cycle.order()[pos];

            // PDN branches for senders on *inner* waveguides (and this
            // one's own sender taps from outside) cross this waveguide at
            // this node when the branch target is further inside.
            if let Some(p) = &pdn {
                for (inner, sends) in sends_on.iter().enumerate().take(num_wg) {
                    if inner >= wi || !sends[pos] {
                        continue; // branch ends before reaching us
                    }
                    // The branch to waveguide `inner` at this node crosses
                    // all waveguides outside `inner`; by the time it hits
                    // us (wi) it has already crossed those further out.
                    let already_crossed = (num_wg - 1 - wi) as f64;
                    let tree_loss = p.loss_for(inner, cycle.order()[pos]);
                    let at_here = tree_loss + already_crossed * loss.crossing_db;
                    let injected = wavelengths_of(wi)
                        .into_iter()
                        .map(|wavelength| NoiseSource {
                            wavelength,
                            power_rel_db: -at_here + xtalk.crossing_leak_db,
                        })
                        .collect();
                    stations.push(Station::Crossing {
                        injected,
                        peer: None,
                        through_mrrs: 0,
                    });
                }
            }

            taps.insert(node.0, stations.len());
            stations.push(Station::NodeTap {
                node,
                drops: std::mem::take(&mut drops_at[pos]),
            });
            senders.insert(node.0, stations.len());
            stations.push(Station::SenderTap { node });

            let next_pos = seq[(k + 1) % n];
            let edge = match wg.direction {
                Direction::Cw => pos,
                Direction::Ccw => next_pos,
            };
            let base = cycle.edge_length(edge);
            let scaled = base + base * extra_perimeter / perimeter;
            stations.push(Station::Segment {
                length_um: scaled,
                bends: cycle.bends_on_edge(edge) as u32,
            });
        }

        layout.waveguides.push(Waveguide {
            closed: true,
            stations,
        });
        tap_idx.push(taps);
        sender_idx.push(senders);
    }

    // Signals.
    for (gsi, route) in plan.routes.iter().enumerate() {
        let RouteKind::Ring { waveguide } = route.kind else {
            panic!("baseline ring routers route everything on rings");
        };
        let pdn_loss_db = match &pdn {
            None => 0.0,
            Some(p) => {
                // Tree loss + the crossings the branch makes on its way
                // in: one per waveguide outside this one.
                let crossings = (num_wg - 1 - waveguide) as f64;
                p.loss_for(waveguide, route.from) + crossings * loss.crossing_db
            }
        };
        let hops = vec![Hop {
            waveguide,
            from_station: sender_idx[waveguide][&route.from.0],
            to_station: tap_idx[waveguide][&route.to.0],
        }];
        if let Station::NodeTap { drops, .. } =
            &mut layout.waveguides[waveguide].stations[tap_idx[waveguide][&route.to.0]]
        {
            drops.push((route.wavelength, SignalId(gsi as u32)));
        }
        layout.signals.push(xring_core::layout::SignalSpec {
            from: route.from,
            to: route.to,
            wavelength: route.wavelength,
            hops,
            pdn_loss_db,
        });
    }

    layout.pdn_modelled = crossing_pdn;
    layout
}

/// First-fit, shortest-direction mapping: ORing's hand-assignment style.
/// Each signal takes its shorter ring direction and the first wavelength
/// slot whose resident arcs do not overlap; new lanes and waveguides open
/// in order.
pub fn first_fit_map(
    cycle: &RingCycle,
    max_wavelengths: usize,
) -> xring_core::mapping::MappingPlan {
    use xring_core::mapping::{Lane, LaneArc, MappingPlan, RingWaveguide, SignalRoute};
    assert!(max_wavelengths >= 1);
    let mut plan = MappingPlan::default();
    for &from in cycle.order() {
        for &to in cycle.order() {
            if from == to {
                continue;
            }
            let fa = cycle.position_of(from);
            let fb = cycle.position_of(to);
            let cw = cycle.arc_length(fa, fb, Direction::Cw);
            let ccw = cycle.arc_length(fa, fb, Direction::Ccw);
            let dir = if cw <= ccw {
                Direction::Cw
            } else {
                Direction::Ccw
            };
            let arc = LaneArc {
                signal: plan.routes.len(),
                from_pos: fa,
                to_pos: fb,
                edges: cycle.arc_edges(fa, fb, dir),
                interior: cycle.interior_positions(fa, fb, dir),
            };
            let mut placed = None;
            'outer: for (wi, wg) in plan.ring_waveguides.iter_mut().enumerate() {
                if wg.direction != dir {
                    continue;
                }
                for (li, lane) in wg.lanes.iter_mut().enumerate() {
                    if lane.accepts(&arc.edges, &arc.interior, None) {
                        lane.arcs.push(arc.clone());
                        placed = Some((wi, li));
                        break 'outer;
                    }
                }
                if wg.lanes.len() < max_wavelengths {
                    let li = wg.lanes.len();
                    wg.lanes.push(Lane {
                        arcs: vec![arc.clone()],
                    });
                    placed = Some((wi, li));
                    break 'outer;
                }
            }
            let (wi, li) = placed.unwrap_or_else(|| {
                let level = plan
                    .ring_waveguides
                    .iter()
                    .filter(|w| w.direction == dir)
                    .count();
                plan.ring_waveguides.push(RingWaveguide {
                    direction: dir,
                    level,
                    opening: None,
                    lanes: vec![Lane { arcs: vec![arc] }],
                });
                (plan.ring_waveguides.len() - 1, 0)
            });
            plan.routes.push(SignalRoute {
                from,
                to,
                wavelength: Wavelength::new(li as u16),
                kind: RouteKind::Ring { waveguide: wi },
            });
        }
    }
    debug_assert_eq!(plan.validate(), Ok(()));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use xring_core::{map_signals, RingBuilder};

    #[test]
    fn baseline_without_pdn_has_no_crossings() {
        let net = NetworkSpec::proton_8();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let plan = map_signals(&net, &ring.cycle, &ShortcutPlan::empty(), 8, 0).expect("mapped");
        let layout = realize_ring_baseline(
            &net,
            &ring.cycle,
            &plan,
            &LossParams::default(),
            &CrosstalkParams::default(),
            false,
            RingSpacing::default(),
        );
        for w in &layout.waveguides {
            assert!(w
                .stations
                .iter()
                .all(|s| !matches!(s, Station::Crossing { .. })));
        }
    }

    #[test]
    fn crossing_pdn_adds_crossings_and_noise() {
        let net = NetworkSpec::proton_8();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let plan = map_signals(&net, &ring.cycle, &ShortcutPlan::empty(), 4, 0).expect("mapped");
        assert!(plan.ring_waveguides.len() >= 2, "need a ring stack");
        let loss = LossParams::default();
        let layout = realize_ring_baseline(
            &net,
            &ring.cycle,
            &plan,
            &loss,
            &CrosstalkParams::default(),
            true,
            RingSpacing::default(),
        );
        // Inner-most waveguide 0 is crossed by nothing... outer ones are.
        let crossing_count: usize = layout
            .waveguides
            .iter()
            .map(|w| {
                w.stations
                    .iter()
                    .filter(|s| matches!(s, Station::Crossing { .. }))
                    .count()
            })
            .sum();
        assert!(crossing_count > 0, "expected PDN crossings");
        let ledger = layout.evaluate_noise(&loss, &CrosstalkParams::default());
        assert!(
            ledger.affected_signal_count() > 0,
            "PDN leakage should corrupt some signals"
        );
    }
}
