//! ORNoC (Le Beux et al., DATE 2011): wavelength assignment on ring
//! waveguides with serpentine reuse.
//!
//! Per the paper's Sec. IV-B, ORNoC "has not proposed the method to
//! construct ring waveguides and design PDNs", so — exactly like the
//! paper — we build its rings with XRing's Step-1 construction, run
//! ORNoC's own first-fit wavelength assignment (signals visited in source
//! order around the ring, reusing a wavelength whenever the directed arcs
//! do not overlap), and attach ORing's crossing PDN.

use crate::ring_common::{realize_ring_baseline, BaselineDesign};
use std::time::Instant;
use xring_core::mapping::{Lane, LaneArc, MappingPlan, RingWaveguide, RouteKind, SignalRoute};
use xring_core::{Direction, NetworkSpec, RingBuilder, RingCycle, RingSpacing, SynthesisError};
use xring_phot::{CrosstalkParams, LossParams, Wavelength};

/// Synthesizes the ORNoC baseline.
///
/// # Errors
///
/// Propagates ring-construction failures.
pub fn synthesize_ornoc(
    net: &NetworkSpec,
    max_wavelengths: usize,
    with_pdn: bool,
    loss: &LossParams,
    xtalk: &CrosstalkParams,
) -> Result<BaselineDesign, SynthesisError> {
    let t0 = Instant::now();
    let ring = RingBuilder::new().build(net)?;
    let plan = ornoc_map(net, &ring.cycle, max_wavelengths);
    let layout = realize_ring_baseline(
        net,
        &ring.cycle,
        &plan,
        loss,
        xtalk,
        with_pdn,
        RingSpacing::default(),
    );
    let audit = xring_core::audit_structure(
        net,
        &ring.cycle,
        &plan,
        &layout,
        &xring_core::Traffic::AllToAll.pairs(net),
    );
    if !audit.is_clean() {
        return Err(SynthesisError::AuditFailed {
            summary: audit.summary(),
        });
    }
    Ok(BaselineDesign {
        cycle: ring.cycle,
        plan,
        layout,
        elapsed: t0.elapsed(),
        audit,
    })
}

/// ORNoC's assignment: walk sources in ring order; for each signal,
/// **maximize channel reuse**: try to fit the shorter-direction arc into
/// any existing lane, then the longer-direction arc into any existing
/// lane (ORNoC happily routes the long way around to reuse a wavelength —
/// this is why its worst-case path lengths in the paper approach the full
/// ring perimeter), and only then open a new lane / waveguide.
pub fn ornoc_map(_net: &NetworkSpec, cycle: &RingCycle, max_wavelengths: usize) -> MappingPlan {
    assert!(max_wavelengths >= 1);
    let mut plan = MappingPlan::default();
    // Source-major order following the ring.
    let mut jobs = Vec::new();
    for &from in cycle.order() {
        for &to in cycle.order() {
            if from != to {
                jobs.push((from, to));
            }
        }
    }
    for (from, to) in jobs {
        let fa = cycle.position_of(from);
        let fb = cycle.position_of(to);
        let cw = cycle.arc_length(fa, fb, Direction::Cw);
        let ccw = cycle.arc_length(fa, fb, Direction::Ccw);
        let short_dir = if cw <= ccw {
            Direction::Cw
        } else {
            Direction::Ccw
        };
        let mk_arc = |dir: Direction, signal: usize| LaneArc {
            signal,
            from_pos: fa,
            to_pos: fb,
            edges: cycle.arc_edges(fa, fb, dir),
            interior: cycle.interior_positions(fa, fb, dir),
        };
        let signal = plan.routes.len();

        // Reuse pass: shorter direction first, then the long way around.
        let mut placed: Option<(usize, usize)> = None;
        'reuse: for dir in [short_dir, short_dir.reversed()] {
            let arc = mk_arc(dir, signal);
            for (wi, wg) in plan.ring_waveguides.iter_mut().enumerate() {
                if wg.direction != dir {
                    continue;
                }
                for (li, lane) in wg.lanes.iter_mut().enumerate() {
                    if lane.accepts(&arc.edges, &arc.interior, None) {
                        lane.arcs.push(arc.clone());
                        placed = Some((wi, li));
                        break 'reuse;
                    }
                }
            }
        }
        // Capacity pass: a new lane on an existing shorter-direction
        // waveguide, else a new waveguide.
        let (wi, li) = placed.unwrap_or_else(|| {
            let arc = mk_arc(short_dir, signal);
            if let Some((wi, _)) = plan
                .ring_waveguides
                .iter()
                .enumerate()
                .find(|(_, w)| w.direction == short_dir && w.lanes.len() < max_wavelengths)
            {
                let li = plan.ring_waveguides[wi].lanes.len();
                plan.ring_waveguides[wi]
                    .lanes
                    .push(Lane { arcs: vec![arc] });
                (wi, li)
            } else {
                let level = plan
                    .ring_waveguides
                    .iter()
                    .filter(|w| w.direction == short_dir)
                    .count();
                plan.ring_waveguides.push(RingWaveguide {
                    direction: short_dir,
                    level,
                    opening: None,
                    lanes: vec![Lane { arcs: vec![arc] }],
                });
                (plan.ring_waveguides.len() - 1, 0)
            }
        });
        plan.routes.push(SignalRoute {
            from,
            to,
            wavelength: Wavelength::new(li as u16),
            kind: RouteKind::Ring { waveguide: wi },
        });
    }
    debug_assert_eq!(plan.validate(), Ok(()));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use xring_phot::PowerParams;

    #[test]
    fn ornoc_maps_everything() {
        let net = NetworkSpec::proton_8();
        let d = synthesize_ornoc(
            &net,
            8,
            false,
            &LossParams::default(),
            &CrosstalkParams::default(),
        )
        .expect("built");
        assert_eq!(d.layout.signals.len(), 56);
        assert_eq!(d.plan.validate(), Ok(()));
    }

    #[test]
    fn ornoc_with_pdn_suffers_noise_and_crossings() {
        let net = NetworkSpec::psion_16();
        let d = synthesize_ornoc(
            &net,
            16,
            true,
            &LossParams::oring(),
            &CrosstalkParams::nikdast(),
        )
        .expect("built");
        let r = d.report(
            "ORNoC/16",
            &LossParams::oring(),
            Some(&CrosstalkParams::nikdast()),
            &PowerParams::default(),
        );
        assert!(r.noisy_signal_count.expect("evaluated") > 0);
        assert!(r.worst_path_crossings > 0);
        assert!(r.total_power_w.expect("pdn") > 0.0);
    }

    #[test]
    fn fewer_wavelengths_need_more_waveguides() {
        let net = NetworkSpec::proton_8();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let few = ornoc_map(&net, &ring.cycle, 2);
        let many = ornoc_map(&net, &ring.cycle, 8);
        assert!(few.ring_waveguides.len() >= many.ring_waveguides.len());
    }
}
