//! The λ-router's exact logical topology (Brière et al. \[6\]).
//!
//! The λ-router is a brick-wall of 2×2 parallel switching elements: `N`
//! diagonal waveguides cross in `N` stages; a signal entering input `i`
//! and destined for output `j` is modulated on wavelength
//! `λ_((i + j) mod N)`, and the PSE resonances are arranged so every such
//! signal arrives correctly — the classic *wavelength-routed non-blocking*
//! property, which [`verify_non_blocking`] checks constructively.
//!
//! The analytic Table-I rows use this module's exact structural counts;
//! only the physical lengths/crossings come from the per-tool layout
//! factors in [`crate::crossbar`].

/// Wavelength index used by the signal `input i → output j` in an
/// `n`-port λ-router.
///
/// # Panics
///
/// Panics if `i == j` (no self-traffic) or either port is out of range.
pub fn wavelength_for(i: usize, j: usize, n: usize) -> usize {
    assert!(i < n && j < n, "port out of range");
    assert_ne!(i, j, "λ-router carries no self-traffic");
    (i + j) % n
}

/// Structural facts about an `n`-port λ-router's worst-case signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LambdaRouterStats {
    /// Wavelengths needed for all-to-all traffic.
    pub wavelengths: usize,
    /// Switching stages a signal traverses.
    pub stages: usize,
    /// Off-resonance MRRs passed on the worst-case path (two per stage,
    /// minus the drop stage).
    pub worst_throughs: usize,
    /// Total 2×2 switching elements in the router.
    pub total_elements: usize,
    /// Total MRRs (two per element).
    pub total_mrrs: usize,
}

/// Computes the structural stats for `n` ports.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn stats(n: usize) -> LambdaRouterStats {
    assert!(n >= 2, "λ-router needs at least 2 ports");
    // Brick-wall: N stages; stage k has floor(N/2) or floor((N-1)/2)
    // elements, totalling N(N-1)/2.
    let total_elements = n * (n - 1) / 2;
    LambdaRouterStats {
        wavelengths: n,
        stages: n,
        worst_throughs: 2 * (n - 1),
        total_elements,
        total_mrrs: 2 * total_elements,
    }
}

/// Constructive non-blocking check: every `(i, j)` pair gets a
/// wavelength such that no two signals *sharing an endpoint* collide —
/// the condition under which the brick-wall routes all of them
/// simultaneously.
///
/// # Errors
///
/// Returns `Err((a, b))` with two colliding signals on the first
/// violation.
pub fn verify_non_blocking(n: usize) -> Result<(), crate::matrix_crossbar::Collision> {
    // Any two distinct signals with the same source share the input
    // waveguide end-to-start; same for destinations. Distinct wavelengths
    // there are necessary AND (for the λ-router's wavelength-routing
    // fabric) sufficient.
    for i in 0..n {
        for j1 in 0..n {
            for j2 in j1 + 1..n {
                if i == j1 || i == j2 {
                    continue;
                }
                if wavelength_for(i, j1, n) == wavelength_for(i, j2, n) {
                    return Err(((i, j1), (i, j2)));
                }
            }
        }
    }
    for j in 0..n {
        for i1 in 0..n {
            for i2 in i1 + 1..n {
                if j == i1 || j == i2 {
                    continue;
                }
                if wavelength_for(i1, j, n) == wavelength_for(i2, j, n) {
                    return Err(((i1, j), (i2, j)));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_function_is_the_diagonal_rule() {
        assert_eq!(wavelength_for(0, 1, 4), 1);
        assert_eq!(wavelength_for(3, 2, 4), 1);
        assert_eq!(wavelength_for(2, 3, 8), 5);
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn self_traffic_rejected() {
        let _ = wavelength_for(2, 2, 8);
    }

    #[test]
    fn non_blocking_for_paper_sizes() {
        for n in [2usize, 4, 8, 16, 32] {
            verify_non_blocking(n)
                .unwrap_or_else(|(a, b)| panic!("collision between {a:?} and {b:?} for n={n}"));
        }
    }

    #[test]
    fn wavelength_count_is_exactly_n() {
        for n in [4usize, 8, 16] {
            let mut used = std::collections::HashSet::new();
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        used.insert(wavelength_for(i, j, n));
                    }
                }
            }
            assert_eq!(used.len(), n, "n={n}");
        }
    }

    #[test]
    fn stats_match_known_structure() {
        let s = stats(8);
        assert_eq!(s.wavelengths, 8);
        assert_eq!(s.stages, 8);
        assert_eq!(s.total_elements, 28);
        assert_eq!(s.total_mrrs, 56);
        assert_eq!(s.worst_throughs, 14);
    }

    #[test]
    fn stats_consistent_with_crossbar_model() {
        // The analytic Table-I model's #wl and through counts come from
        // this exact structure.
        use crate::crossbar::CrossbarKind;
        for n in [8usize, 16] {
            let exact = stats(n);
            assert_eq!(CrossbarKind::LambdaRouter.wavelengths(n), exact.wavelengths);
            // The analytic worst_throughs (2n) upper-bounds the exact
            // count (2(n-1)).
            assert!(CrossbarKind::LambdaRouter.worst_throughs(n) >= exact.worst_throughs);
        }
    }
}
