//! An executable matrix-crossbar topology (the GWOR class \[7\]).
//!
//! GWOR's defining property is all-to-all wavelength routing with `N−1`
//! wavelengths over a grid of waveguides with CSEs at the intersections.
//! This module implements the canonical matrix form of that class: one
//! horizontal *row* waveguide per source, one vertical *column* waveguide
//! per destination, and a CSE at `(row i, column j)` tuned to the
//! round-robin wavelength of the pair `{i, j}` (see [`wavelength_for`]).
//!
//! Unlike the per-tool analytic rows of [`crate::crossbar`], everything
//! here is *constructed*: signal paths are real rectilinear segments (via
//! `xring-geom`), and [`verify_non_blocking`] proves the wavelength
//! assignment collision-free by geometric overlap checking rather than by
//! assertion.

use xring_geom::{Point, Segment, SegmentIntersection};

/// Element pitch of the grid, µm (spacing of rows/columns).
pub const ELEMENT_PITCH_UM: i64 = 100;

/// Wavelength index of the signal `source i → destination j` in an
/// `n`-port matrix crossbar (`n` even, like GWOR).
///
/// Uses the round-robin 1-factorization of `K_n` (the "circle method"):
/// the unordered pair `{i, j}` is assigned the round it would play in an
/// `n`-team tournament. Signals sharing a row (same source) or a column
/// (same destination) always land in different rounds, so `n − 1`
/// wavelengths suffice — the GWOR property. The two directions of a pair
/// share a wavelength, which is safe because their paths are disjoint.
///
/// # Panics
///
/// Panics if `i == j`, either port is out of range, or `n` is odd
/// (GWOR-class routers are defined for even port counts).
pub fn wavelength_for(i: usize, j: usize, n: usize) -> usize {
    assert!(i < n && j < n, "port out of range");
    assert_ne!(i, j, "no self-traffic");
    assert_eq!(n % 2, 0, "matrix crossbar needs an even port count");
    let m = n - 1;
    if i == m {
        (2 * j) % m
    } else if j == m {
        (2 * i) % m
    } else {
        (i + j) % m
    }
}

/// The rectilinear path of signal `i → j`: along row `i` from the left
/// edge to column `j`, then down column `j` to the bottom edge.
pub fn path(i: usize, j: usize, n: usize) -> [Segment; 2] {
    assert!(i < n && j < n && i != j, "bad ports");
    let p = ELEMENT_PITCH_UM;
    let y = i as i64 * p;
    let x = j as i64 * p;
    let row = Segment::new(Point::new(-p, y), Point::new(x, y));
    let col = Segment::new(Point::new(x, y), Point::new(x, n as i64 * p));
    [row, col]
}

/// Structural facts about the worst-case signal of an `n`-port matrix
/// crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixCrossbarStats {
    /// Wavelengths needed (`n − 1`).
    pub wavelengths: usize,
    /// Waveguide crossings passed on the worst-case path.
    pub worst_crossings: usize,
    /// Off-resonance CSEs passed on the worst-case path.
    pub worst_throughs: usize,
    /// Total CSEs in the router (`n(n−1)`; the diagonal has none).
    pub total_elements: usize,
    /// Worst path length in µm.
    pub worst_length_um: i64,
}

/// Computes exact structural stats by walking every signal's real path.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn stats(n: usize) -> MatrixCrossbarStats {
    assert!(n >= 2);
    let mut worst_crossings = 0usize;
    let mut worst_throughs = 0usize;
    let mut worst_length = 0i64;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let [row, col] = path(i, j, n);
            let length = row.length() + col.length();
            // Crossings: the row segment crosses every column waveguide
            // strictly before column j; the column segment crosses every
            // row waveguide strictly below row i.
            let mut crossings = 0usize;
            let mut throughs = 0usize;
            for k in 0..n {
                if k != j {
                    // Does column k cross the row span?
                    let colx = k as i64 * ELEMENT_PITCH_UM;
                    if colx > row.start().x && colx < row.end().x {
                        crossings += 1;
                        // A CSE sits there iff (i, k) is a valid pair.
                        if k != i {
                            throughs += 1;
                        }
                    }
                }
                if k != i {
                    let rowy = k as i64 * ELEMENT_PITCH_UM;
                    if rowy > col.start().y && rowy < col.end().y {
                        crossings += 1;
                        if k != j {
                            throughs += 1;
                        }
                    }
                }
            }
            if crossings > worst_crossings {
                worst_crossings = crossings;
            }
            if throughs > worst_throughs {
                worst_throughs = throughs;
            }
            if length > worst_length {
                worst_length = length;
            }
        }
    }
    MatrixCrossbarStats {
        wavelengths: n - 1,
        worst_crossings,
        worst_throughs,
        total_elements: n * (n - 1),
        worst_length_um: worst_length,
    }
}

/// A colliding pair of `(source, destination)` signals.
pub type Collision = ((usize, usize), (usize, usize));

/// Geometric non-blocking proof: no two distinct signals on the same
/// wavelength share a waveguide stretch of positive length.
///
/// # Errors
///
/// Returns the first colliding pair on failure.
pub fn verify_non_blocking(n: usize) -> Result<(), Collision> {
    let mut signals = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                signals.push((i, j, wavelength_for(i, j, n), path(i, j, n)));
            }
        }
    }
    for a in 0..signals.len() {
        for b in a + 1..signals.len() {
            let (i1, j1, w1, p1) = &signals[a];
            let (i2, j2, w2, p2) = &signals[b];
            if w1 != w2 {
                continue;
            }
            for s1 in p1 {
                for s2 in p2 {
                    if let SegmentIntersection::Overlap(ov) = s1.intersection(s2) {
                        if !ov.is_degenerate() {
                            return Err(((*i1, *j1), (*i2, *j2)));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_rule_uses_n_minus_1_channels() {
        for n in [4usize, 8, 16, 32] {
            let mut used = std::collections::HashSet::new();
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        let w = wavelength_for(i, j, n);
                        assert!(w < n - 1);
                        used.insert(w);
                    }
                }
            }
            assert_eq!(used.len(), n - 1, "n={n}");
        }
    }

    #[test]
    fn rows_and_columns_carry_distinct_wavelengths() {
        let n = 8;
        for i in 0..n {
            let mut seen = std::collections::HashSet::new();
            for j in 0..n {
                if j != i {
                    assert!(seen.insert(wavelength_for(i, j, n)), "row {i} collision");
                }
            }
        }
        for j in 0..n {
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                if j != i {
                    assert!(seen.insert(wavelength_for(i, j, n)), "column {j} collision");
                }
            }
        }
    }

    #[test]
    fn geometric_non_blocking_proof_for_paper_sizes() {
        for n in [2usize, 4, 8, 16, 32] {
            verify_non_blocking(n)
                .unwrap_or_else(|(a, b)| panic!("n={n}: signals {a:?} and {b:?} collide"));
        }
    }

    #[test]
    fn paths_are_l_shaped_and_connected() {
        let n = 6;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let [row, col] = path(i, j, n);
                assert!(row.is_horizontal());
                assert!(col.is_vertical());
                assert_eq!(row.end(), col.start());
            }
        }
    }

    #[test]
    fn stats_scale_linearly() {
        let s8 = stats(8);
        let s16 = stats(16);
        assert_eq!(s8.wavelengths, 7);
        assert_eq!(s16.wavelengths, 15);
        assert_eq!(s8.total_elements, 56);
        assert_eq!(s16.total_elements, 240);
        assert!(s16.worst_crossings > s8.worst_crossings);
        // Worst crossings grow as ~2n: bounded by 2n for both sizes.
        assert!(s8.worst_crossings <= 2 * 8);
        assert!(s16.worst_crossings <= 2 * 16);
        assert!(s16.worst_length_um > s8.worst_length_um);
    }

    #[test]
    fn analytic_gwor_row_is_consistent_with_the_executable_model() {
        use crate::crossbar::CrossbarKind;
        for n in [8usize, 16] {
            let exact = stats(n);
            assert_eq!(CrossbarKind::Gwor.wavelengths(n), exact.wavelengths);
            // The analytic internal-crossing count (n + 2) approximates
            // the executable model's worst case within 2x.
            let analytic = CrossbarKind::Gwor.internal_crossings(n);
            assert!(
                analytic <= 2 * exact.worst_crossings && exact.worst_crossings <= 2 * analytic,
                "n={n}: analytic {analytic} vs exact {}",
                exact.worst_crossings
            );
        }
    }
}
