//! Baseline WRONoC routers the XRing paper compares against.
//!
//! * [`ornoc`] — ORNoC (Le Beux et al., DATE 2011): first-fit wavelength
//!   assignment on the same ring-waveguide construction as XRing, no
//!   shortcuts, no openings, and the crossing PDN of ORing \[17\].
//! * [`oring`] — ORing (Ortín-Obón et al., TVLSI 2017): the manually
//!   designed ring router with per-direction waveguides and a comb-style
//!   PDN that crosses ring waveguides.
//! * [`crossbar`] — analytic models of the crossbar routers λ-router,
//!   GWOR and Light as synthesized by Proton+, PlanarONoC and ToPro
//!   (Table I's upper rows); see DESIGN.md §2 for the substitution note.
//! * [`ring_common`] — the shared "crossing PDN" realization: lowering a
//!   mapped ring plan to a [`xring_core::LayoutModel`] whose PDN branches
//!   cross ring waveguides, injecting loss and first-order noise.

pub mod crossbar;
pub mod lambda_router;
pub mod matrix_crossbar;
pub mod oring;
pub mod ornoc;
pub mod ring_common;

pub use crossbar::{crossbar_report, CrossbarKind, LayoutStyle};
pub use lambda_router::{verify_non_blocking, LambdaRouterStats};
pub use oring::synthesize_oring;
pub use ornoc::synthesize_ornoc;
pub use ring_common::BaselineDesign;
