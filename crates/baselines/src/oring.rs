//! ORing (Ortín-Obón et al., TVLSI 2017): the manually designed ring
//! router with a PDN.
//!
//! ORing orders the nodes along the floorplan perimeter (the hand layout
//! of its Fig. 10), assigns wavelengths first-fit in each signal's
//! shorter ring direction under the `#wl` cap (the hand-assignment style
//! of \[17\]), builds no shortcuts and no openings, and supplies power
//! through the comb PDN that crosses ring waveguides.

use crate::ring_common::{first_fit_map, realize_ring_baseline, BaselineDesign};
use std::time::Instant;
use xring_core::{NetworkSpec, RingAlgorithm, RingBuilder, RingSpacing, SynthesisError};
use xring_phot::{CrosstalkParams, LossParams};

/// Synthesizes the ORing baseline.
///
/// # Errors
///
/// Propagates mapping failures
/// ([`SynthesisError::WavelengthBudgetExceeded`]).
pub fn synthesize_oring(
    net: &NetworkSpec,
    max_wavelengths: usize,
    with_pdn: bool,
    loss: &LossParams,
    xtalk: &CrosstalkParams,
) -> Result<BaselineDesign, SynthesisError> {
    let t0 = Instant::now();
    // Manual design: perimeter node order, not the MILP.
    let ring = RingBuilder::new()
        .with_algorithm(RingAlgorithm::Perimeter)
        .build(net)?;
    let plan = first_fit_map(&ring.cycle, max_wavelengths);
    let layout = realize_ring_baseline(
        net,
        &ring.cycle,
        &plan,
        loss,
        xtalk,
        with_pdn,
        RingSpacing::default(),
    );
    let audit = xring_core::audit_structure(
        net,
        &ring.cycle,
        &plan,
        &layout,
        &xring_core::Traffic::AllToAll.pairs(net),
    );
    if !audit.is_clean() {
        return Err(SynthesisError::AuditFailed {
            summary: audit.summary(),
        });
    }
    Ok(BaselineDesign {
        cycle: ring.cycle,
        plan,
        layout,
        elapsed: t0.elapsed(),
        audit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ornoc::synthesize_ornoc;
    use xring_phot::PowerParams;

    #[test]
    fn oring_maps_everything() {
        let net = NetworkSpec::psion_16();
        let d = synthesize_oring(
            &net,
            12,
            true,
            &LossParams::oring(),
            &CrosstalkParams::nikdast(),
        )
        .expect("built");
        assert_eq!(d.layout.signals.len(), 240);
        assert_eq!(d.plan.validate(), Ok(()));
    }

    #[test]
    fn oring_has_shorter_worst_paths_than_ornoc() {
        // ORNoC's reuse-greedy assignment routes some signals the long
        // way around; ORing's shortest-direction assignment does not.
        let net = NetworkSpec::psion_16();
        let loss = LossParams::oring();
        let xt = CrosstalkParams::nikdast();
        let p = PowerParams::default();
        let oring = synthesize_oring(&net, 16, false, &loss, &xt).expect("oring");
        let ornoc = synthesize_ornoc(&net, 16, false, &loss, &xt).expect("ornoc");
        let r_oring = oring.report("oring", &loss, None, &p);
        let r_ornoc = ornoc.report("ornoc", &loss, None, &p);
        assert!(
            r_oring.worst_path_len_mm <= r_ornoc.worst_path_len_mm + 1e-9,
            "{} vs {}",
            r_oring.worst_path_len_mm,
            r_ornoc.worst_path_len_mm
        );
    }

    #[test]
    fn oring_with_pdn_reports_power() {
        let net = NetworkSpec::psion_16();
        let loss = LossParams::oring();
        let xt = CrosstalkParams::nikdast();
        let d = synthesize_oring(&net, 12, true, &loss, &xt).expect("built");
        let r = d.report("ORing/16", &loss, Some(&xt), &PowerParams::default());
        assert!(r.total_power_w.expect("pdn") > 0.0);
        assert!(r.noisy_signal_count.expect("evaluated") > 0);
    }
}
