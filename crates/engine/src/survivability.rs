//! Batch fault sweeps: device-fault scenarios fanned across the worker
//! pool, one sweep point per spare level, with Pareto reporting over
//! power × wavelengths × fault margin.
//!
//! A sweep answers the provisioning question the core verifier cannot:
//! *how much* does survivability cost. For each requested
//! [`SpareConfig`] level the engine synthesizes one design, enumerates
//! every single-fault scenario ([`enumerate_single_faults`]), audits
//! each degraded design in parallel on the worker pool, and scores the
//! level on laser power, channel count and fault margin (the fraction
//! of scenarios survived). Points not dominated on all three axes are
//! flagged Pareto-optimal.

use std::time::{Duration, Instant};

use xring_core::{
    apply_fault, audit_degraded, enumerate_single_faults, DegradedDesign, DeviceFault, FaultAudit,
    NetworkSpec, RepairSummary, SpareConfig, SynthesisOptions, Synthesizer,
};
use xring_phot::{CrosstalkParams, PowerParams};

use crate::executor::Engine;
use crate::job::JobError;

/// One spare level's outcome in a fault sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepPoint {
    /// Level label (e.g. `"spares k_wl=1 k_mrr=1"`).
    pub label: String,
    /// The spare configuration synthesized at this level.
    pub spares: SpareConfig,
    /// Channels the design uses (spare channels excluded — they are
    /// dark until a repair claims them).
    pub wavelengths: usize,
    /// Ring waveguides in the design.
    pub waveguides: usize,
    /// Total laser power of the healthy design (None without a PDN).
    pub total_power_w: Option<f64>,
    /// Single-fault scenarios enumerated.
    pub scenarios: usize,
    /// Scenarios survived (clean post-failure audit, all demands
    /// served).
    pub survived: usize,
    /// `survived / scenarios` (1.0 when no scenario exists).
    pub fault_margin: f64,
    /// Lowest served-demand fraction across scenarios.
    pub min_served_fraction: f64,
    /// Worst post-failure SNR across scenarios (when crosstalk was
    /// evaluated).
    pub worst_post_snr_db: Option<f64>,
    /// Description of the worst failing scenario, when any failed.
    pub worst: Option<String>,
    /// True when no other sweep point is at least as good on power,
    /// wavelengths *and* fault margin while better on one of them.
    pub pareto: bool,
    /// Wall clock for this level (synthesis + all scenario audits).
    pub wall: Duration,
}

/// The outcome of [`Engine::fault_sweep`], points in level order.
#[derive(Debug, Clone)]
pub struct FaultSweepResult {
    /// One point per requested spare level.
    pub points: Vec<FaultSweepPoint>,
}

impl FaultSweepResult {
    /// The Pareto-optimal points, in level order.
    pub fn frontier(&self) -> impl Iterator<Item = &FaultSweepPoint> {
        self.points.iter().filter(|p| p.pareto)
    }
}

impl Engine {
    /// Sweeps `levels` spare configurations over `net`: per level,
    /// synthesize under `base` with that level's spares, enumerate every
    /// single-fault scenario and audit the degraded designs across the
    /// worker pool. Pass `xtalk` to score post-failure SNR (loss-only
    /// audits otherwise). Fails fast if any level's synthesis fails —
    /// e.g. when the spare reservation leaves no usable channel.
    pub fn fault_sweep(
        &self,
        net: &NetworkSpec,
        base: &SynthesisOptions,
        levels: &[SpareConfig],
        xtalk: Option<&CrosstalkParams>,
    ) -> Result<FaultSweepResult, JobError> {
        let _span = xring_obs::span_labelled("fault-sweep", format!("{} levels", levels.len()));
        let mut points = Vec::with_capacity(levels.len());
        for &spares in levels {
            let t0 = Instant::now();
            let options = base.clone().with_spares(spares);
            let design = Synthesizer::new(options.clone())
                .synthesize(net)
                .map_err(JobError::Synthesis)?;
            let healthy = design.report(
                format!("fault-sweep {spares}"),
                &options.loss,
                xtalk,
                &PowerParams::default(),
            );
            let faults = enumerate_single_faults(&design);
            // Scenarios whose repair leaves the design untouched all
            // share this baseline audit instead of re-evaluating it.
            let baseline = audit_degraded(
                &DegradedDesign {
                    design: design.clone(),
                    fault: DeviceFault::WavelengthLoss {
                        wavelength: u16::MAX,
                    },
                    repair: RepairSummary::default(),
                    lost: Vec::new(),
                    unchanged: true,
                },
                &options,
                xtalk,
            );
            let audits = self.run_tasks(faults.len(), |i| {
                let degraded = apply_fault(&design, faults[i], &options);
                if degraded.unchanged {
                    Ok(FaultAudit {
                        fault: degraded.fault,
                        repair: degraded.repair,
                        ..baseline.clone()
                    })
                } else {
                    Ok(audit_degraded(&degraded, &options, xtalk))
                }
            });
            let mut survived = 0usize;
            let mut min_served = 1.0f64;
            let mut worst_snr: Option<f64> = None;
            let mut worst: Option<String> = None;
            for (fault, outcome) in faults.iter().zip(audits) {
                match outcome {
                    Ok(audit) => {
                        let fraction = audit.served_fraction();
                        if audit.survived {
                            survived += 1;
                        } else if worst.is_none() || fraction < min_served {
                            worst = Some(format!("{fault}: {}", audit.report.summary()));
                        }
                        min_served = min_served.min(fraction);
                        worst_snr = match (worst_snr, audit.post_snr_db) {
                            (Some(w), Some(s)) => Some(w.min(s)),
                            (None, s) => s,
                            (w, None) => w,
                        };
                    }
                    Err(e) => {
                        // A panicking audit counts as an unsurvived
                        // scenario, never a silently skipped one.
                        min_served = 0.0;
                        worst = Some(format!("{fault}: audit failed: {e}"));
                    }
                }
            }
            let scenarios = faults.len();
            let margin = if scenarios == 0 {
                1.0
            } else {
                survived as f64 / scenarios as f64
            };
            xring_obs::counter("engine.fault_sweep_levels", 1);
            xring_obs::record_hist(
                "engine.fault_sweep_level_us",
                t0.elapsed().as_micros() as u64,
            );
            points.push(FaultSweepPoint {
                label: format!("spares {spares}"),
                spares,
                wavelengths: design.plan.wavelengths_used(),
                waveguides: design.plan.ring_waveguides.len(),
                total_power_w: healthy.total_power_w,
                scenarios,
                survived,
                fault_margin: margin,
                min_served_fraction: min_served,
                worst_post_snr_db: worst_snr,
                worst,
                pareto: false,
                wall: t0.elapsed(),
            });
        }
        mark_pareto(&mut points);
        Ok(FaultSweepResult { points })
    }
}

/// Flags the points not dominated in (power ↓, wavelengths ↓,
/// fault margin ↑).
fn mark_pareto(points: &mut [FaultSweepPoint]) {
    let n = points.len();
    for i in 0..n {
        let dominated = (0..n).any(|j| j != i && dominates(&points[j], &points[i]));
        points[i].pareto = !dominated;
    }
}

/// True when `a` is at least as good as `b` on every axis and strictly
/// better on at least one.
fn dominates(a: &FaultSweepPoint, b: &FaultSweepPoint) -> bool {
    let pa = a.total_power_w.unwrap_or(0.0);
    let pb = b.total_power_w.unwrap_or(0.0);
    let as_good = pa <= pb && a.wavelengths <= b.wavelengths && a.fault_margin >= b.fault_margin;
    let better = pa < pb || a.wavelengths < b.wavelengths || a.fault_margin > b.fault_margin;
    as_good && better
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_spare_margin_is_strictly_below_one_spare() {
        let engine = Engine::new().with_workers(4);
        let net = NetworkSpec::proton_8();
        let base = SynthesisOptions::with_wavelengths(8);
        let result = engine
            .fault_sweep(
                &net,
                &base,
                &[SpareConfig::default(), SpareConfig::uniform(1)],
                None,
            )
            .expect("sweep");
        assert_eq!(result.points.len(), 2);
        let zero = &result.points[0];
        let one = &result.points[1];
        assert!(zero.scenarios > 0 && one.scenarios > 0);
        assert!(
            zero.fault_margin < one.fault_margin,
            "zero-spare margin {} not strictly below spared margin {}",
            zero.fault_margin,
            one.fault_margin
        );
        assert_eq!(one.fault_margin, 1.0, "worst: {:?}", one.worst);
        assert_eq!(one.min_served_fraction, 1.0);
        assert!(zero.min_served_fraction < 1.0);
        assert!(zero.worst.is_some());
        // The fully-survivable point has the best margin, so nothing
        // dominates it: it must sit on the frontier.
        assert!(one.pareto);
        assert!(result.frontier().count() >= 1);
    }

    #[test]
    fn sweep_surfaces_synthesis_failures() {
        let engine = Engine::new();
        let net = NetworkSpec::proton_8();
        // Reserving the whole budget leaves no usable channel.
        let err = engine
            .fault_sweep(
                &net,
                &SynthesisOptions::with_wavelengths(1),
                &[SpareConfig::uniform(1)],
                None,
            )
            .unwrap_err();
        assert!(matches!(err, JobError::Synthesis(_)));
    }
}
