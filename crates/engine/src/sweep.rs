//! Parallel `#wl` sweeps with the serial API's exact semantics.

use xring_core::{
    pick_best_index, NetworkSpec, SweepObjective, SweepPoint, SweepResult, SynthesisError,
    SynthesisOptions,
};
use xring_phot::{CrosstalkParams, LossParams, PowerParams};

use crate::executor::Engine;
use crate::job::{JobError, SynthesisJob};

impl Engine {
    /// The parallel, cached equivalent of
    /// [`xring_core::sweep_wavelengths`]: same inputs, same outputs (wall
    /// times aside), same winner. Candidates run as one batch on the
    /// worker pool; repeated points hit the engine's design cache.
    ///
    /// # Errors
    ///
    /// Exactly as the serial function: budget-exhausted candidates are
    /// skipped, [`SynthesisError::WavelengthBudgetExceeded`] when none is
    /// feasible, and the first other failure (in candidate order) is
    /// propagated. A panic inside a candidate's synthesis resumes here.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_wavelengths(
        &self,
        net: &NetworkSpec,
        base: SynthesisOptions,
        candidates: &[usize],
        objective: SweepObjective,
        loss: &LossParams,
        xtalk: Option<&CrosstalkParams>,
        power: &PowerParams,
    ) -> Result<SweepResult, SynthesisError> {
        assert!(!candidates.is_empty(), "sweep needs candidates");
        let jobs: Vec<SynthesisJob> = candidates
            .iter()
            .map(|&wl| SynthesisJob {
                label: format!("#wl={wl}"),
                net: net.clone(),
                options: SynthesisOptions {
                    max_wavelengths: wl,
                    ..base.clone()
                },
                loss: loss.clone(),
                xtalk: xtalk.cloned(),
                power: power.clone(),
            })
            .collect();
        let batch = self.run_batch(jobs);

        let mut points = Vec::new();
        for (&wl, outcome) in candidates.iter().zip(batch.outcomes) {
            match outcome {
                Ok(out) => points.push(SweepPoint {
                    wavelengths: wl,
                    report: out.report,
                    degradation: out.design.provenance.degradation,
                    milp_convergence: out.design.ring_stats.convergence.clone(),
                    design: (*out.design).clone(),
                }),
                Err(JobError::Synthesis(SynthesisError::WavelengthBudgetExceeded { .. })) => {
                    continue
                }
                Err(JobError::Synthesis(e)) => return Err(e),
                Err(JobError::DeadlineExceeded) => return Err(SynthesisError::DeadlineExceeded),
                Err(JobError::Panicked(msg)) => {
                    panic!("sweep candidate #wl={wl} panicked: {msg}")
                }
            }
        }
        if points.is_empty() {
            return Err(SynthesisError::WavelengthBudgetExceeded {
                max_wavelengths: *candidates.iter().max().expect("non-empty"),
                max_waveguides: base.max_waveguides,
            });
        }
        let best = pick_best_index(&points, objective);
        Ok(SweepResult { points, best })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xring_core::sweep_wavelengths as serial_sweep;

    #[test]
    fn parallel_sweep_matches_serial() {
        let net = NetworkSpec::proton_8();
        let base = SynthesisOptions::with_wavelengths(8);
        let candidates = [2, 4, 8];
        let loss = LossParams::default();
        let xtalk = CrosstalkParams::default();
        let power = PowerParams::default();
        let serial = serial_sweep(
            &net,
            base.clone(),
            &candidates,
            SweepObjective::MinPower,
            &loss,
            Some(&xtalk),
            &power,
        )
        .expect("serial sweep");
        let parallel = Engine::new()
            .with_workers(3)
            .sweep_wavelengths(
                &net,
                base,
                &candidates,
                SweepObjective::MinPower,
                &loss,
                Some(&xtalk),
                &power,
            )
            .expect("parallel sweep");
        assert_eq!(parallel.best, serial.best);
        assert_eq!(parallel.points.len(), serial.points.len());
        for (p, s) in parallel.points.iter().zip(&serial.points) {
            assert_eq!(p.wavelengths, s.wavelengths);
            assert_eq!(p.report.normalized(), s.report.normalized());
        }
    }

    #[test]
    fn infeasible_candidates_are_skipped() {
        let net = NetworkSpec::proton_8();
        let base = SynthesisOptions {
            max_waveguides: 4,
            ..SynthesisOptions::with_wavelengths(8)
        };
        let r = Engine::new()
            .sweep_wavelengths(
                &net,
                base,
                &[1, 8],
                SweepObjective::MinInsertionLoss,
                &LossParams::default(),
                None,
                &PowerParams::default(),
            )
            .expect("sweep succeeds");
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].wavelengths, 8);
    }

    #[test]
    fn all_infeasible_reports_budget_exhaustion() {
        let net = NetworkSpec::proton_8();
        let base = SynthesisOptions {
            max_waveguides: 1,
            ..SynthesisOptions::with_wavelengths(1)
        };
        let err = Engine::new()
            .sweep_wavelengths(
                &net,
                base,
                &[1, 2],
                SweepObjective::MinPower,
                &LossParams::default(),
                None,
                &PowerParams::default(),
            )
            .expect_err("no candidate fits");
        assert_eq!(
            err,
            SynthesisError::WavelengthBudgetExceeded {
                max_wavelengths: 2,
                max_waveguides: 1,
            }
        );
    }

    #[test]
    fn repeated_sweeps_hit_the_cache() {
        let engine = Engine::new();
        let net = NetworkSpec::proton_8();
        let run = || {
            engine
                .sweep_wavelengths(
                    &net,
                    SynthesisOptions::with_wavelengths(8),
                    &[2, 4],
                    SweepObjective::MinPower,
                    &LossParams::default(),
                    None,
                    &PowerParams::default(),
                )
                .expect("sweep")
        };
        let first = run();
        assert_eq!(engine.cache().hits(), 0);
        assert_eq!(engine.cache().misses(), 2);
        let second = run();
        assert_eq!(engine.cache().hits(), 2);
        assert_eq!(engine.cache().misses(), 2);
        assert_eq!(first.best, second.best);
        for (a, b) in first.points.iter().zip(&second.points) {
            assert_eq!(a.report, b.report); // cached hits echo the report
        }
    }
}
