//! The worker-pool executor.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;
use xring_core::{audit_report_bounds, SynthesisError, Synthesizer};

use crate::cache::{canonical_key, DesignCache};
use crate::job::{BatchResult, JobError, JobOutput, SynthesisJob};
use crate::metrics::{BatchMetrics, EngineEvent, EventSink};

/// A batch executor: a scoped worker pool sharing a [`DesignCache`] and
/// an optional [`EventSink`].
///
/// Determinism contract: for the same submitted jobs, the outcomes are
/// identical (wall-clock fields aside) for any worker count — results are
/// returned in submission order and every job's synthesis depends only on
/// its own inputs.
pub struct Engine {
    workers: usize,
    cache: Arc<DesignCache>,
    sink: Option<Arc<dyn EventSink>>,
    /// How many times a panicking job is retried before its
    /// [`JobError::Panicked`] is surfaced. Transient panics (a poisoned
    /// lock left by an unrelated crash, an injected fault) heal on retry;
    /// deterministic ones fail identically and surface after the budget.
    panic_retries: usize,
    #[cfg(feature = "fault-inject")]
    fault_plan: Option<crate::fault::FaultPlan>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("cache", &self.cache)
            .field("sink", &self.sink.as_ref().map(|_| "dyn EventSink"))
            .finish()
    }
}

impl Engine {
    /// An engine with one worker per available core, a fresh cache and
    /// one panic retry per job.
    pub fn new() -> Self {
        Engine {
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
            cache: Arc::new(DesignCache::new()),
            sink: None,
            panic_retries: 1,
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets how many times a panicking job is retried (0 disables
    /// retries; the first panic is final).
    pub fn with_panic_retries(mut self, retries: usize) -> Self {
        self.panic_retries = retries;
        self
    }

    /// Replaces the engine's design cache with a shared one. Several
    /// engines (or a long-running service and its per-request engines)
    /// can point at the same [`DesignCache`] — typically one constructed
    /// with [`DesignCache::with_byte_budget`] — so synthesis results are
    /// reused across all of them.
    pub fn with_cache(mut self, cache: Arc<DesignCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Attaches a deterministic fault-injection plan. Faults fire on each
    /// job's *first* attempt only, so the retry path is also exercised.
    #[cfg(feature = "fault-inject")]
    pub fn with_fault_plan(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches an event sink; every job start/finish and batch summary
    /// is emitted to it.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine's design cache (for inspecting hit/miss counters).
    pub fn cache(&self) -> &DesignCache {
        &self.cache
    }

    fn emit(&self, event: EngineEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    /// Runs `count` closures on the worker pool and returns their results
    /// in index order. A panicking task becomes
    /// [`JobError::Panicked`]; the worker survives and takes the next
    /// task. This is the generic substrate under
    /// [`run_batch`](Self::run_batch), exposed for callers (the bench
    /// tables) whose units of work are not whole [`SynthesisJob`]s.
    pub fn run_tasks<T, F>(&self, count: usize, task: F) -> Vec<Result<T, JobError>>
    where
        T: Send,
        F: Fn(usize) -> Result<T, JobError> + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<T, JobError>>>> =
            (0..count).map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(count);
        // The caller may run under a request trace (the serve path); hand
        // that request to every worker so per-job spans land in the same
        // per-request span tree instead of vanishing across the pool.
        let request = xring_obs::current_request();
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let _req_scope = request.as_ref().map(|r| r.attach());
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let result = catch_unwind(AssertUnwindSafe(|| task(i)))
                            .unwrap_or_else(|p| Err(JobError::Panicked(panic_message(p.as_ref()))));
                        *slots[i].lock().expect("result slot") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every task index was claimed by a worker")
            })
            .collect()
    }

    /// Runs a batch of synthesis jobs and returns per-job outcomes in
    /// submission order plus aggregated [`BatchMetrics`].
    pub fn run_batch(&self, jobs: Vec<SynthesisJob>) -> BatchResult {
        let _span = xring_obs::span_labelled("batch", format!("{} jobs", jobs.len()));
        let t0 = Instant::now();
        // Queue wait: batch submission to worker pickup, per job. The
        // local histogram is always on (four relaxed atomics per job) so
        // batch metrics carry percentiles even without tracing; the
        // global registry copy only records under `--trace`.
        let queue_wait = xring_obs::Histogram::new();
        let outcomes = self.run_tasks(jobs.len(), |i| {
            let wait_us = t0.elapsed().as_micros() as u64;
            queue_wait.record(wait_us);
            xring_obs::record_hist("engine.queue_wait_us", wait_us);
            self.run_job(i, &jobs[i])
        });
        let mut metrics = BatchMetrics::default();
        for outcome in &outcomes {
            metrics.record(outcome);
        }
        metrics.batch_wall = t0.elapsed();
        let waits = queue_wait.snapshot("engine.queue_wait_us");
        metrics.queue_wait_p50_us = waits.quantile(0.5);
        metrics.queue_wait_p90_us = waits.quantile(0.9);
        metrics.queue_wait_p99_us = waits.quantile(0.99);
        metrics.queue_wait_max_us = waits.max;
        self.emit(EngineEvent::BatchFinished {
            metrics: metrics.clone(),
        });
        BatchResult { outcomes, metrics }
    }

    /// Incrementally re-synthesizes `job` after an edit, reusing the
    /// phase artifacts persisted in the engine's [`DesignCache`] from
    /// `prev` (and from every earlier incremental run sharing the
    /// cache).
    ///
    /// Each pipeline phase is keyed on a content hash of its actual
    /// inputs ([`xring_core::PhaseKeys`]); phases whose keys the edit
    /// did not change are replayed verbatim — keeping the result
    /// bit-identical to a cold synthesis of the edited spec — and only
    /// the dirty suffix of the phase DAG is recomputed. When the edit
    /// dirties the ring phase itself, the MILP is warm-started from
    /// `prev`'s exported LP basis. The number of replayed phases is
    /// reported in [`JobOutput::phases_reused`].
    ///
    /// A first call with `prev == job` runs cold and seeds the artifact
    /// store. Whole-design cache hits still short-circuit everything.
    ///
    /// # Example
    ///
    /// ```
    /// use xring_core::{NetworkSpec, SynthesisOptions, Traffic};
    /// use xring_engine::{Engine, SynthesisJob};
    ///
    /// let engine = Engine::new();
    /// let base = SynthesisJob::new(
    ///     "base",
    ///     NetworkSpec::proton_8(),
    ///     SynthesisOptions::with_wavelengths(8),
    /// );
    /// // Cold: every phase recomputes and persists its artifact.
    /// let cold = engine.resynthesize(&base, &base)?;
    /// assert_eq!(cold.phases_reused, 0);
    ///
    /// // Edit the traffic: the ring and shortcut phases replay from
    /// // their artifacts; only mapping, opening and PDN recompute.
    /// let mut edited = base.clone();
    /// edited.label = "edited".to_owned();
    /// edited.options.traffic = Traffic::NearestNeighbors(3);
    /// let warm = engine.resynthesize(&base, &edited)?;
    /// assert!(!warm.cache_hit);
    /// assert_eq!(warm.phases_reused, 2);
    /// # Ok::<(), xring_engine::JobError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As for a batch job: [`JobError::Synthesis`] once the incremental
    /// path's cold fallback is exhausted, [`JobError::DeadlineExceeded`]
    /// on deadline expiry, [`JobError::Panicked`] if the pipeline
    /// panics.
    pub fn resynthesize(
        &self,
        prev: &SynthesisJob,
        job: &SynthesisJob,
    ) -> Result<JobOutput, JobError> {
        let _span = xring_obs::span_labelled("resynthesize", job.label.clone());
        let t0 = Instant::now();
        let key = canonical_key(job);
        if let Some((design, report)) = self.cache.lookup(&key, &job.label) {
            return Ok(JobOutput {
                label: job.label.clone(),
                design,
                report,
                wall: t0.elapsed(),
                cache_hit: true,
                phases_reused: 0,
            });
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let new_keys = xring_core::PhaseKeys::compute(&job.net, &job.options);
            let prev_keys = xring_core::PhaseKeys::compute(&prev.net, &prev.options);
            // Only a ring-dirty edit needs the previous basis; a clean
            // ring key replays the whole artifact instead.
            let warm_hint = (new_keys.ring != prev_keys.ring)
                .then(|| self.cache.warm_basis_for(prev_keys.ring))
                .flatten();
            let synthesizer = Synthesizer::new(job.options.clone());
            let (design, inc) = synthesizer.synthesize_incremental(
                &job.net,
                self.cache.as_ref(),
                warm_hint.as_ref(),
            )?;
            let design = Arc::new(design);
            let report =
                design.report(job.label.clone(), &job.loss, job.xtalk.as_ref(), &job.power);
            let bounds = audit_report_bounds(&report);
            if !bounds.passed {
                return Err(JobError::Synthesis(SynthesisError::AuditFailed {
                    summary: format!("{}: {}", bounds.invariant, bounds.detail),
                }));
            }
            self.cache.insert(key, Arc::clone(&design), report.clone());
            Ok(JobOutput {
                label: job.label.clone(),
                design,
                report,
                wall: Default::default(),
                cache_hit: false,
                phases_reused: inc.phases_reused(),
            })
        }))
        .unwrap_or_else(|p| Err(JobError::Panicked(panic_message(p.as_ref()))));
        result.map(|mut out| {
            out.wall = t0.elapsed();
            xring_obs::record_hist("engine.resynthesize_wall_us", out.wall.as_micros() as u64);
            if out.phases_reused > 0 {
                xring_obs::counter("engine.incremental_jobs", 1);
            }
            out
        })
    }

    /// Runs one job: cache lookup, else synthesize + evaluate + insert.
    /// Panics inside the synthesis are caught here so the job-finished
    /// event is still emitted; a panicking attempt is retried up to
    /// [`with_panic_retries`](Self::with_panic_retries) times before the
    /// [`JobError::Panicked`] surfaces.
    fn run_job(&self, index: usize, job: &SynthesisJob) -> Result<JobOutput, JobError> {
        let _span = xring_obs::span_labelled("job", job.label.clone());
        self.emit(EngineEvent::JobStarted {
            index,
            label: job.label.clone(),
        });
        let t0 = Instant::now();
        let mut attempt = 0;
        let mut result = loop {
            let r = catch_unwind(AssertUnwindSafe(|| {
                self.synthesize_job(index, attempt, job)
            }))
            .unwrap_or_else(|p| Err(JobError::Panicked(panic_message(p.as_ref()))));
            if matches!(r, Err(JobError::Panicked(_))) && attempt < self.panic_retries {
                attempt += 1;
                continue;
            }
            break r;
        };
        let wall = t0.elapsed();
        xring_obs::record_hist("engine.job_wall_us", wall.as_micros() as u64);
        let (status, cache_hit, degradation) = match &mut result {
            Ok(out) => {
                out.wall = wall;
                (
                    "ok",
                    out.cache_hit,
                    out.design.provenance.degradation.as_str(),
                )
            }
            Err(JobError::DeadlineExceeded) => ("deadline", false, "-"),
            Err(JobError::Synthesis(_)) => ("error", false, "-"),
            Err(JobError::Panicked(_)) => ("panic", false, "-"),
        };
        self.emit(EngineEvent::JobFinished {
            index,
            label: job.label.clone(),
            status,
            cache_hit,
            degradation,
            wall,
        });
        result
    }

    /// One synthesis attempt. `index`/`attempt` drive fault injection
    /// (faults fire on attempt 0 only) and are otherwise unused.
    fn synthesize_job(
        &self,
        index: usize,
        attempt: usize,
        job: &SynthesisJob,
    ) -> Result<JobOutput, JobError> {
        #[cfg(not(feature = "fault-inject"))]
        let _ = (index, attempt);
        let key = canonical_key(job);
        // Holds the armed solver fault (if any) until synthesis consumes
        // it; dropping the guard disarms, so a fault aimed at this job
        // can never leak into a neighbour's solve on the same worker.
        #[cfg(feature = "fault-inject")]
        let _armed = self.inject_fault(index, attempt, &key);
        if let Some((design, report)) = self.cache.lookup(&key, &job.label) {
            #[cfg(feature = "fault-inject")]
            self.check_device_fault(index, attempt, &design, job)?;
            return Ok(JobOutput {
                label: job.label.clone(),
                design,
                report,
                wall: Default::default(),
                cache_hit: true,
                phases_reused: 0,
            });
        }
        let design = Arc::new(Synthesizer::new(job.options.clone()).synthesize(&job.net)?);
        // The synthesizer audited the design already; re-check here so a
        // design that somehow bypassed it (or a future code path that
        // forgets) can neither be cached nor returned.
        if !design.provenance.audit.is_clean() {
            return Err(JobError::Synthesis(SynthesisError::AuditFailed {
                summary: design.provenance.audit.summary(),
            }));
        }
        let report = design.report(job.label.clone(), &job.loss, job.xtalk.as_ref(), &job.power);
        // The provenance audit evaluated physical bounds with the *core*
        // options; this job may evaluate under different loss/crosstalk
        // parameters, so bound-check the report actually handed out.
        let bounds = audit_report_bounds(&report);
        if !bounds.passed {
            return Err(JobError::Synthesis(SynthesisError::AuditFailed {
                summary: format!("{}: {}", bounds.invariant, bounds.detail),
            }));
        }
        self.cache.insert(key, Arc::clone(&design), report.clone());
        // The design is good and cached; an injected device fault is an
        // external event striking it afterwards, so it fails only this
        // job, never the cache entry.
        #[cfg(feature = "fault-inject")]
        self.check_device_fault(index, attempt, &design, job)?;
        Ok(JobOutput {
            label: job.label.clone(),
            design,
            report,
            wall: Default::default(),
            cache_hit: false,
            phases_reused: 0,
        })
    }

    /// Applies the fault plan's decision for `(index, attempt)`. Solver
    /// faults return an RAII guard that keeps the thread-local armed
    /// until synthesis consumes it; cache corruption acts immediately;
    /// a worker panic unwinds from here (caught in [`run_job`]).
    #[cfg(feature = "fault-inject")]
    fn inject_fault(
        &self,
        index: usize,
        attempt: usize,
        key: &[u8],
    ) -> Option<xring_milp::fault::ArmedFault> {
        use crate::fault::FaultClass;
        use xring_milp::fault::{arm, InjectedSolveFault};
        let plan = self.fault_plan.as_ref()?;
        if attempt > 0 {
            return None; // faults fire on the first attempt only
        }
        match plan.decide(index)? {
            FaultClass::SimplexNumerical => Some(arm(InjectedSolveFault::Numerical)),
            FaultClass::SolverDeadline => Some(arm(InjectedSolveFault::Deadline)),
            FaultClass::WorkerPanic => panic!("injected fault: worker panic (job {index})"),
            FaultClass::CacheCorruption => {
                self.cache.corrupt(key);
                None
            }
            // Strikes the *product*, not the pipeline: applied to the
            // finished design in `check_device_fault`.
            FaultClass::DeviceFault => None,
        }
    }

    /// Applies the plan's seeded device fault (if `(index, attempt)`
    /// drew [`FaultClass::DeviceFault`](crate::fault::FaultClass)) to
    /// the finished design and fails the job unless the degraded design
    /// passes its post-failure audit. A design synthesized with spares
    /// ([`SynthesisOptions::spares`](xring_core::SynthesisOptions)) is
    /// proven survivable and sails through; a zero-spare design loses
    /// the struck demand and the job errors.
    #[cfg(feature = "fault-inject")]
    fn check_device_fault(
        &self,
        index: usize,
        attempt: usize,
        design: &xring_core::XRingDesign,
        job: &SynthesisJob,
    ) -> Result<(), JobError> {
        use crate::fault::FaultClass;
        let Some(plan) = self.fault_plan.as_ref() else {
            return Ok(());
        };
        if attempt > 0 || plan.decide(index) != Some(FaultClass::DeviceFault) {
            return Ok(());
        }
        let faults = xring_core::enumerate_single_faults(design);
        if faults.is_empty() {
            return Ok(());
        }
        // Seeded scenario pick, independent of the decide() draw stream.
        let stream = plan.seed() ^ (index as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let pick = (xring_core::SplitMix64::new(stream).next_u64() as usize) % faults.len();
        let fault = faults[pick];
        let audit =
            xring_core::audit_design_under_fault(design, fault, &job.options, job.xtalk.as_ref());
        if audit.survived {
            xring_obs::counter("engine.device_faults_survived", 1);
            Ok(())
        } else {
            xring_obs::counter("engine.device_faults_fatal", 1);
            Err(JobError::Synthesis(SynthesisError::AuditFailed {
                summary: format!("injected device fault {fault}: {}", audit.report.summary()),
            }))
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_return_in_index_order() {
        let engine = Engine::new().with_workers(4);
        let results = engine.run_tasks(16, |i| Ok(i * i));
        let values: Vec<usize> = results.into_iter().map(|r| r.expect("ok")).collect();
        assert_eq!(values, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list_is_fine() {
        let engine = Engine::new();
        assert!(engine.run_tasks(0, |_| Ok(())).is_empty());
        let batch = engine.run_batch(Vec::new());
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.metrics.jobs, 0);
    }

    // The run_job panic-retry loop is exercised end-to-end by the
    // `fault-inject` suite (tests/fault_tolerance.rs): WorkerPanic
    // faults fire on each job's first attempt and must heal on retry.

    #[test]
    fn engines_sharing_a_cache_reuse_each_others_designs() {
        use xring_core::{NetworkSpec, SynthesisOptions};
        let shared = Arc::new(DesignCache::with_byte_budget(64 << 20));
        let job = || {
            SynthesisJob::new(
                "shared",
                NetworkSpec::proton_8(),
                SynthesisOptions::with_wavelengths(4),
            )
        };
        let a = Engine::new().with_cache(Arc::clone(&shared));
        let b = Engine::new().with_cache(Arc::clone(&shared));
        let first = a.run_batch(vec![job()]);
        assert!(!first.outcomes[0].as_ref().expect("ok").cache_hit);
        let second = b.run_batch(vec![job()]);
        assert!(
            second.outcomes[0].as_ref().expect("ok").cache_hit,
            "second engine missed the shared cache"
        );
        assert_eq!(shared.hits(), 1);
        assert_eq!(shared.misses(), 1);
        assert!(shared.bytes() > 0);
    }

    #[test]
    fn a_panicking_task_does_not_poison_its_neighbours() {
        let engine = Engine::new().with_workers(2);
        let results = engine.run_tasks(5, |i| {
            if i == 2 {
                panic!("task {i} exploded");
            }
            Ok(i)
        });
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                assert_eq!(r, &Err(JobError::Panicked("task 2 exploded".to_owned())));
            } else {
                assert_eq!(r, &Ok(i));
            }
        }
    }
}
