//! The worker-pool executor.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;
use xring_core::Synthesizer;

use crate::cache::{canonical_key, DesignCache};
use crate::job::{BatchResult, JobError, JobOutput, SynthesisJob};
use crate::metrics::{BatchMetrics, EngineEvent, EventSink};

/// A batch executor: a scoped worker pool sharing a [`DesignCache`] and
/// an optional [`EventSink`].
///
/// Determinism contract: for the same submitted jobs, the outcomes are
/// identical (wall-clock fields aside) for any worker count — results are
/// returned in submission order and every job's synthesis depends only on
/// its own inputs.
pub struct Engine {
    workers: usize,
    cache: DesignCache,
    sink: Option<Arc<dyn EventSink>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("cache", &self.cache)
            .field("sink", &self.sink.as_ref().map(|_| "dyn EventSink"))
            .finish()
    }
}

impl Engine {
    /// An engine with one worker per available core and a fresh cache.
    pub fn new() -> Self {
        Engine {
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
            cache: DesignCache::new(),
            sink: None,
        }
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Attaches an event sink; every job start/finish and batch summary
    /// is emitted to it.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine's design cache (for inspecting hit/miss counters).
    pub fn cache(&self) -> &DesignCache {
        &self.cache
    }

    fn emit(&self, event: EngineEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    /// Runs `count` closures on the worker pool and returns their results
    /// in index order. A panicking task becomes
    /// [`JobError::Panicked`]; the worker survives and takes the next
    /// task. This is the generic substrate under
    /// [`run_batch`](Self::run_batch), exposed for callers (the bench
    /// tables) whose units of work are not whole [`SynthesisJob`]s.
    pub fn run_tasks<T, F>(&self, count: usize, task: F) -> Vec<Result<T, JobError>>
    where
        T: Send,
        F: Fn(usize) -> Result<T, JobError> + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<T, JobError>>>> =
            (0..count).map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(count);
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| task(i)))
                        .unwrap_or_else(|p| Err(JobError::Panicked(panic_message(p.as_ref()))));
                    *slots[i].lock().expect("result slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every task index was claimed by a worker")
            })
            .collect()
    }

    /// Runs a batch of synthesis jobs and returns per-job outcomes in
    /// submission order plus aggregated [`BatchMetrics`].
    pub fn run_batch(&self, jobs: Vec<SynthesisJob>) -> BatchResult {
        let t0 = Instant::now();
        let outcomes = self.run_tasks(jobs.len(), |i| self.run_job(i, &jobs[i]));
        let mut metrics = BatchMetrics::default();
        for outcome in &outcomes {
            metrics.record(outcome);
        }
        metrics.batch_wall = t0.elapsed();
        self.emit(EngineEvent::BatchFinished {
            metrics: metrics.clone(),
        });
        BatchResult { outcomes, metrics }
    }

    /// Runs one job: cache lookup, else synthesize + evaluate + insert.
    /// Panics inside the synthesis are caught here so the job-finished
    /// event is still emitted.
    fn run_job(&self, index: usize, job: &SynthesisJob) -> Result<JobOutput, JobError> {
        self.emit(EngineEvent::JobStarted {
            index,
            label: job.label.clone(),
        });
        let t0 = Instant::now();
        let mut result = catch_unwind(AssertUnwindSafe(|| self.synthesize_job(job)))
            .unwrap_or_else(|p| Err(JobError::Panicked(panic_message(p.as_ref()))));
        let wall = t0.elapsed();
        let (status, cache_hit) = match &mut result {
            Ok(out) => {
                out.wall = wall;
                ("ok", out.cache_hit)
            }
            Err(JobError::DeadlineExceeded) => ("deadline", false),
            Err(JobError::Synthesis(_)) => ("error", false),
            Err(JobError::Panicked(_)) => ("panic", false),
        };
        self.emit(EngineEvent::JobFinished {
            index,
            label: job.label.clone(),
            status,
            cache_hit,
            wall,
        });
        result
    }

    fn synthesize_job(&self, job: &SynthesisJob) -> Result<JobOutput, JobError> {
        let key = canonical_key(job);
        if let Some((design, report)) = self.cache.lookup(&key, &job.label) {
            return Ok(JobOutput {
                label: job.label.clone(),
                design,
                report,
                wall: Default::default(),
                cache_hit: true,
            });
        }
        let design = Arc::new(Synthesizer::new(job.options.clone()).synthesize(&job.net)?);
        let report = design.report(job.label.clone(), &job.loss, job.xtalk.as_ref(), &job.power);
        self.cache.insert(key, Arc::clone(&design), report.clone());
        Ok(JobOutput {
            label: job.label.clone(),
            design,
            report,
            wall: Default::default(),
            cache_hit: false,
        })
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_return_in_index_order() {
        let engine = Engine::new().with_workers(4);
        let results = engine.run_tasks(16, |i| Ok(i * i));
        let values: Vec<usize> = results.into_iter().map(|r| r.expect("ok")).collect();
        assert_eq!(values, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list_is_fine() {
        let engine = Engine::new();
        assert!(engine.run_tasks(0, |_| Ok(())).is_empty());
        let batch = engine.run_batch(Vec::new());
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.metrics.jobs, 0);
    }

    #[test]
    fn a_panicking_task_does_not_poison_its_neighbours() {
        let engine = Engine::new().with_workers(2);
        let results = engine.run_tasks(5, |i| {
            if i == 2 {
                panic!("task {i} exploded");
            }
            Ok(i)
        });
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                assert_eq!(r, &Err(JobError::Panicked("task 2 exploded".to_owned())));
            } else {
                assert_eq!(r, &Ok(i));
            }
        }
    }
}
