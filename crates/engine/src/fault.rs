//! Deterministic fault-injection plans (feature `fault-inject`).
//!
//! A [`FaultPlan`] decides, purely from a seed and a job's submission
//! index, whether that job suffers an injected fault and of which class.
//! Because the decision ignores wall clock, worker identity and
//! scheduling order, a plan reproduces the same fault pattern on every
//! run and any worker count — the property the fault-tolerance suite
//! relies on to assert exact per-job outcomes.
//!
//! The five classes cover the failure modes the engine promises to
//! survive:
//!
//! * [`FaultClass::SimplexNumerical`] — the MILP's LP relaxation reports
//!   a numerical failure ([`SolveError::Numerical`]).
//! * [`FaultClass::SolverDeadline`] — branch-and-bound aborts as if the
//!   cooperative deadline expired ([`SolveError::Interrupted`]).
//! * [`FaultClass::WorkerPanic`] — the worker thread panics mid-job.
//! * [`FaultClass::CacheCorruption`] — the job's cache entry (if any) is
//!   corrupted just before lookup, exercising validate-on-read eviction.
//! * [`FaultClass::DeviceFault`] — a seeded post-silicon device fault
//!   (MRR drop, segment break or wavelength loss, see
//!   [`xring_core::fault`]) is applied to the synthesized design and the
//!   job fails unless the degraded design still passes its post-failure
//!   audit. Unlike the four *process* classes above, this fault strikes
//!   the product, not the pipeline.
//!
//! [`SolveError::Numerical`]: xring_milp::SolveError::Numerical
//! [`SolveError::Interrupted`]: xring_milp::SolveError::Interrupted

use xring_core::SplitMix64;

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// The LP relaxation fails numerically inside branch-and-bound.
    SimplexNumerical,
    /// The solver aborts as if its cooperative deadline expired.
    SolverDeadline,
    /// The worker thread panics while running the job.
    WorkerPanic,
    /// The job's cached design is corrupted before its cache lookup.
    CacheCorruption,
    /// A seeded device fault (MRR drop, segment break, wavelength loss)
    /// strikes the synthesized design; the job fails unless the degraded
    /// design passes its post-failure audit.
    DeviceFault,
}

impl FaultClass {
    /// Every class, in the order [`FaultPlan::decide`] stacks their
    /// probability bands.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::SimplexNumerical,
        FaultClass::SolverDeadline,
        FaultClass::WorkerPanic,
        FaultClass::CacheCorruption,
        FaultClass::DeviceFault,
    ];

    /// The *process* classes — faults in the synthesis pipeline itself,
    /// as opposed to the post-silicon [`FaultClass::DeviceFault`].
    pub const PROCESS: [FaultClass; 4] = [
        FaultClass::SimplexNumerical,
        FaultClass::SolverDeadline,
        FaultClass::WorkerPanic,
        FaultClass::CacheCorruption,
    ];

    /// A stable kebab-case name for logs and assertions.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::SimplexNumerical => "simplex-numerical",
            FaultClass::SolverDeadline => "solver-deadline",
            FaultClass::WorkerPanic => "worker-panic",
            FaultClass::CacheCorruption => "cache-corruption",
            FaultClass::DeviceFault => "device-fault",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class injection probabilities, each in `[0, 1]`. The classes are
/// disjoint: one draw per job lands in at most one band, so the chance of
/// *any* fault is the sum (which must stay ≤ 1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability of [`FaultClass::SimplexNumerical`].
    pub numerical: f64,
    /// Probability of [`FaultClass::SolverDeadline`].
    pub deadline: f64,
    /// Probability of [`FaultClass::WorkerPanic`].
    pub panic: f64,
    /// Probability of [`FaultClass::CacheCorruption`].
    pub cache_corruption: f64,
    /// Probability of [`FaultClass::DeviceFault`].
    pub device: f64,
}

impl FaultRates {
    /// The same rate for every *process* class
    /// ([`FaultClass::PROCESS`]); the device-fault rate stays 0 (combine
    /// with [`with_device`](Self::with_device) to add it).
    pub fn uniform(rate: f64) -> Self {
        FaultRates {
            numerical: rate,
            deadline: rate,
            panic: rate,
            cache_corruption: rate,
            device: 0.0,
        }
    }

    /// Sets the device-fault rate.
    pub fn with_device(mut self, rate: f64) -> Self {
        self.device = rate;
        self
    }

    /// The total probability that a job suffers any fault.
    pub fn total(&self) -> f64 {
        self.numerical + self.deadline + self.panic + self.cache_corruption + self.device
    }
}

/// A seeded, deterministic fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
}

impl FaultPlan {
    /// A plan with the given seed and zero rates (injects nothing until
    /// [`with_rates`](Self::with_rates) is applied).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: FaultRates::default(),
        }
    }

    /// Sets the per-class rates.
    ///
    /// # Panics
    ///
    /// Panics when any rate is outside `[0, 1]` or the total exceeds 1.
    pub fn with_rates(mut self, rates: FaultRates) -> Self {
        for (name, r) in [
            ("numerical", rates.numerical),
            ("deadline", rates.deadline),
            ("panic", rates.panic),
            ("cache_corruption", rates.cache_corruption),
            ("device", rates.device),
        ] {
            assert!((0.0..=1.0).contains(&r), "{name} rate {r} outside [0, 1]");
        }
        assert!(
            rates.total() <= 1.0 + 1e-12,
            "total fault rate {} exceeds 1",
            rates.total()
        );
        self.rates = rates;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// The fault (if any) injected into the job at submission `index`.
    /// Pure: depends only on the seed, the rates and the index.
    ///
    /// # Rate-stacking order
    ///
    /// One uniform draw in `[0, 1)` is taken per index and mapped
    /// through probability bands stacked in [`FaultClass::ALL`] order —
    /// `numerical`, `deadline`, `panic`, `cache_corruption`, `device`.
    /// The draw lands in the first band whose cumulative upper edge
    /// exceeds it, so changing one class's rate never re-rolls the draw:
    /// it only moves the band edges. This order is a stability contract
    /// — reordering the bands (or inserting a class anywhere but at the
    /// end) would silently re-class every seeded scenario, so new
    /// classes must always append.
    ///
    /// ```
    /// use xring_engine::{FaultClass, FaultPlan, FaultRates};
    ///
    /// // A full-width first band captures every draw…
    /// let plan = FaultPlan::new(9).with_rates(FaultRates {
    ///     numerical: 1.0,
    ///     ..FaultRates::default()
    /// });
    /// assert_eq!(plan.decide(3), Some(FaultClass::SimplexNumerical));
    ///
    /// // …and re-assigning its mass to the band stacked directly after
    /// // it re-classes the same draw without changing *which* indices
    /// // fault: the draw is a pure function of (seed, index).
    /// let moved = FaultPlan::new(9).with_rates(FaultRates {
    ///     deadline: 1.0,
    ///     ..FaultRates::default()
    /// });
    /// assert_eq!(moved.decide(3), Some(FaultClass::SolverDeadline));
    ///
    /// // The device band stacks last, above all process bands.
    /// let device = FaultPlan::new(9).with_rates(FaultRates {
    ///     device: 1.0,
    ///     ..FaultRates::default()
    /// });
    /// assert_eq!(device.decide(3), Some(FaultClass::DeviceFault));
    /// ```
    pub fn decide(&self, index: usize) -> Option<FaultClass> {
        let stream = self.seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let draw = SplitMix64::new(stream).next_f64();
        let mut band = 0.0;
        for (class, rate) in FaultClass::ALL.iter().zip([
            self.rates.numerical,
            self.rates.deadline,
            self.rates.panic,
            self.rates.cache_corruption,
            self.rates.device,
        ]) {
            band += rate;
            if draw < band {
                return Some(*class);
            }
        }
        None
    }

    /// Convenience: the decisions for jobs `0..count`.
    pub fn schedule(&self, count: usize) -> Vec<Option<FaultClass>> {
        (0..count).map(|i| self.decide(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::new(42).with_rates(FaultRates::uniform(0.1));
        assert_eq!(plan.schedule(64), plan.schedule(64));
        let other = FaultPlan::new(43).with_rates(FaultRates::uniform(0.1));
        assert_ne!(plan.schedule(64), other.schedule(64));
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::new(7);
        assert!(plan.schedule(256).iter().all(Option::is_none));
    }

    #[test]
    fn rates_approximate_fault_frequency() {
        let plan = FaultPlan::new(0xFA_15).with_rates(FaultRates::uniform(0.1));
        let schedule = plan.schedule(10_000);
        let fired = schedule.iter().filter(|d| d.is_some()).count();
        // Expect ~4000 of 10k; allow a generous band.
        assert!((3_500..=4_500).contains(&fired), "fired {fired}");
        for class in FaultClass::PROCESS {
            let n = schedule.iter().filter(|d| **d == Some(class)).count();
            assert!((700..=1_300).contains(&n), "{class}: {n}");
        }
    }

    #[test]
    fn device_band_stacks_after_process_bands() {
        let rates = FaultRates::uniform(0.1).with_device(0.1);
        let plan = FaultPlan::new(0xFA_15).with_rates(rates);
        let schedule = plan.schedule(10_000);
        let device = schedule
            .iter()
            .filter(|d| **d == Some(FaultClass::DeviceFault))
            .count();
        assert!((700..=1_300).contains(&device), "device: {device}");
        // Raising only the device rate must not re-class any job a
        // process band already captured.
        let wider = FaultPlan::new(0xFA_15)
            .with_rates(FaultRates::uniform(0.1).with_device(0.3))
            .schedule(10_000);
        for (a, b) in schedule.iter().zip(&wider) {
            if let Some(c) = a {
                assert_eq!(Some(*c), *b);
            }
        }
    }

    #[test]
    fn invalid_rates_panic() {
        // Total over 1.
        assert!(std::panic::catch_unwind(|| {
            FaultPlan::new(0).with_rates(FaultRates {
                numerical: 0.9,
                ..FaultRates::uniform(0.3)
            })
        })
        .is_err());
        // Negative rate.
        assert!(std::panic::catch_unwind(
            || FaultPlan::new(0).with_rates(FaultRates::uniform(-0.1))
        )
        .is_err());
    }

    #[test]
    fn class_names_are_stable() {
        let names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "simplex-numerical",
                "solver-deadline",
                "worker-panic",
                "cache-corruption",
                "device-fault"
            ]
        );
        assert_eq!(FaultClass::PROCESS[..], FaultClass::ALL[..4]);
    }
}
