//! Batch synthesis engine: parallel, cached, deadline-aware execution of
//! XRing synthesis jobs.
//!
//! The serial pipeline in `xring-core` synthesizes one router at a time;
//! every consumer that needs more than one design — `#wl` sweeps, the
//! paper's benchmark tables, ablation studies — used to loop over it,
//! re-synthesizing identical `(network, options)` pairs and leaving cores
//! idle. This crate packages that orchestration once:
//!
//! * [`SynthesisJob`] / [`BatchResult`] — the job model: one synthesis
//!   plus its evaluation parameters in, one design + report (or a
//!   [`JobError`]) out, in submission order.
//! * [`Engine`] — a scoped worker pool over [`std::thread`]. Results are
//!   deterministic regardless of worker count; a panicking job becomes
//!   [`JobError::Panicked`] instead of poisoning the batch; each job's
//!   wall-clock [`deadline`](SynthesisJob::with_deadline) is threaded
//!   into the MILP branch-and-bound, which aborts mid-solve with
//!   [`JobError::DeadlineExceeded`].
//! * [`DesignCache`] — a content-addressed in-memory cache keyed by a
//!   canonical encoding of the network, the synthesis options and the
//!   evaluation parameters. Repeated points across sweeps, tables and
//!   repeats are synthesized once.
//! * [`BatchMetrics`] / [`EventSink`] — per-batch aggregation of wall
//!   time, MILP effort and cache effectiveness, with an optional
//!   JSON-lines event stream ([`JsonlSink`]) for offline analysis.
//!
//! # Example
//!
//! ```
//! use xring_core::{NetworkSpec, SynthesisOptions};
//! use xring_engine::{Engine, SynthesisJob};
//!
//! let net = NetworkSpec::proton_8();
//! let jobs: Vec<SynthesisJob> = [4, 8]
//!     .iter()
//!     .map(|&wl| {
//!         SynthesisJob::new(
//!             format!("#wl={wl}"),
//!             net.clone(),
//!             SynthesisOptions::with_wavelengths(wl),
//!         )
//!     })
//!     .collect();
//! let batch = Engine::new().run_batch(jobs);
//! assert_eq!(batch.outcomes.len(), 2);
//! assert_eq!(batch.metrics.succeeded, 2);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod executor;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod job;
pub mod metrics;
pub mod survivability;
pub mod sweep;

pub use cache::{approx_entry_bytes, canonical_key, DesignCache};
pub use executor::Engine;
#[cfg(feature = "fault-inject")]
pub use fault::{FaultClass, FaultPlan, FaultRates};
pub use job::{BatchResult, JobError, JobOutput, SynthesisJob};
pub use metrics::{BatchMetrics, EngineEvent, EventSink, JsonlSink};
pub use survivability::{FaultSweepPoint, FaultSweepResult};
