//! Batch metrics aggregation and the optional event stream.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;
// One JSON escaper for every JSONL surface in the workspace: this sink
// and the `--trace` exporter escape identically.
use xring_obs::json_escape;

use crate::job::{JobError, JobOutput};

/// Aggregated statistics for one [`run_batch`](crate::Engine::run_batch)
/// call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchMetrics {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that produced a design.
    pub succeeded: usize,
    /// Jobs that failed (deadline, synthesis error or panic).
    pub failed: usize,
    /// Jobs served from the design cache.
    pub cache_hits: usize,
    /// Jobs that had to synthesize.
    pub cache_misses: usize,
    /// Wall-clock time of the whole batch.
    pub batch_wall: Duration,
    /// Sum of per-job wall times (≥ `batch_wall` under parallelism).
    pub total_job_wall: Duration,
    /// The slowest single job.
    pub max_job_wall: Duration,
    /// Branch-and-bound nodes explored, summed over fresh (non-cached)
    /// successful jobs.
    pub milp_nodes: usize,
    /// LP relaxations solved, summed over fresh successful jobs.
    pub milp_lp_solves: usize,
    /// Lazy conflict constraints separated, summed over fresh successful
    /// jobs.
    pub milp_lazy_cuts: usize,
    /// LP solves that adopted a parent basis (warm starts), summed over
    /// fresh successful jobs.
    pub milp_warm_starts: usize,
    /// LP solves that were offered a parent basis, summed over fresh
    /// successful jobs — the denominator of the warm-start rate.
    pub milp_warm_eligible: usize,
    /// Successful jobs whose design came from the perturbed-objective
    /// MILP retry (provenance [`DegradationLevel::RetriedPerturbed`]).
    ///
    /// [`DegradationLevel::RetriedPerturbed`]:
    /// xring_core::DegradationLevel::RetriedPerturbed
    pub degraded_retried: usize,
    /// Successful jobs whose design fell back to the heuristic ring
    /// (provenance [`DegradationLevel::Heuristic`]).
    ///
    /// [`DegradationLevel::Heuristic`]:
    /// xring_core::DegradationLevel::Heuristic
    pub degraded_heuristic: usize,
    /// Median queue wait (batch submission to worker pickup), in
    /// microseconds, across all jobs. Percentiles come from the
    /// engine's always-on lock-free queue-wait histogram, replacing
    /// the old single last-write-wins gauge sample.
    pub queue_wait_p50_us: u64,
    /// 90th-percentile queue wait, in microseconds.
    pub queue_wait_p90_us: u64,
    /// 99th-percentile queue wait, in microseconds.
    pub queue_wait_p99_us: u64,
    /// Largest queue wait, in microseconds.
    pub queue_wait_max_us: u64,
    /// Fresh successful jobs whose ring MILP carried convergence
    /// telemetry (0 when telemetry was off; see
    /// [`RingStats::convergence`](xring_core::RingStats)).
    pub convergence_reports: usize,
    /// Worst (largest) final MILP optimality gap across those jobs.
    pub milp_final_gap_max: f64,
    /// Worst time-to-first-incumbent across those jobs.
    pub milp_time_to_incumbent_max: Duration,
}

impl BatchMetrics {
    /// Folds one job outcome into the aggregate.
    pub(crate) fn record(&mut self, outcome: &Result<JobOutput, JobError>) {
        self.jobs += 1;
        match outcome {
            Ok(out) => {
                self.succeeded += 1;
                self.total_job_wall += out.wall;
                self.max_job_wall = self.max_job_wall.max(out.wall);
                match out.design.provenance.degradation {
                    xring_core::DegradationLevel::Exact => {}
                    xring_core::DegradationLevel::RetriedPerturbed => self.degraded_retried += 1,
                    xring_core::DegradationLevel::Heuristic => self.degraded_heuristic += 1,
                }
                if out.cache_hit {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                    let s = &out.design.ring_stats;
                    self.milp_nodes += s.milp_nodes;
                    self.milp_lp_solves += s.lp_solves;
                    self.milp_lazy_cuts += s.lazy_cuts;
                    self.milp_warm_starts += s.lp_warm_starts;
                    self.milp_warm_eligible += s.lp_warm_eligible;
                    if let Some(conv) = &s.convergence {
                        self.convergence_reports += 1;
                        if let Some(gap) = conv.final_gap {
                            self.milp_final_gap_max = self.milp_final_gap_max.max(gap);
                        }
                        if let Some(t) = conv.time_to_first_incumbent {
                            self.milp_time_to_incumbent_max =
                                self.milp_time_to_incumbent_max.max(t);
                        }
                    }
                }
            }
            Err(_) => {
                self.failed += 1;
                self.cache_misses += 1;
            }
        }
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} jobs ({} ok, {} failed) in {:.3}s; cache {}/{} hit; \
             milp: {} nodes, {} lp solves, {} lazy cuts; \
             degraded: {} retried, {} heuristic; \
             queue wait p50/p99/max: {}/{}/{} us",
            self.jobs,
            self.succeeded,
            self.failed,
            self.batch_wall.as_secs_f64(),
            self.cache_hits,
            self.jobs,
            self.milp_nodes,
            self.milp_lp_solves,
            self.milp_lazy_cuts,
            self.degraded_retried,
            self.degraded_heuristic,
            self.queue_wait_p50_us,
            self.queue_wait_p99_us,
            self.queue_wait_max_us,
        );
        if self.convergence_reports > 0 {
            line.push_str(&format!(
                "; convergence ({} solves): worst gap {:.4}, worst tti {:.3}s",
                self.convergence_reports,
                self.milp_final_gap_max,
                self.milp_time_to_incumbent_max.as_secs_f64(),
            ));
        }
        line
    }
}

/// One engine event, emitted as jobs progress.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A worker picked up job `index`.
    JobStarted {
        /// Submission index of the job.
        index: usize,
        /// The job's label.
        label: String,
    },
    /// Job `index` finished (either way).
    JobFinished {
        /// Submission index of the job.
        index: usize,
        /// The job's label.
        label: String,
        /// `"ok"`, `"deadline"`, `"error"` or `"panic"`.
        status: &'static str,
        /// Whether the cache served the design.
        cache_hit: bool,
        /// The design's degradation level (`"exact"`, `"retried"` or
        /// `"heuristic"`); `"-"` when the job failed.
        degradation: &'static str,
        /// Wall-clock time spent on this job.
        wall: Duration,
    },
    /// The whole batch completed.
    BatchFinished {
        /// The final aggregate.
        metrics: BatchMetrics,
    },
}

/// Receiver for [`EngineEvent`]s. Implementations must be thread-safe:
/// workers emit concurrently.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn emit(&self, event: &EngineEvent);
}

/// An [`EventSink`] writing one JSON object per line, suitable for
/// `xring batch --metrics-jsonl`.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the writer (flushing is the caller's concern).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("sink lock")
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&self, event: &EngineEvent) {
        let line = match event {
            EngineEvent::JobStarted { index, label } => format!(
                r#"{{"event":"job_started","index":{index},"label":"{}"}}"#,
                json_escape(label)
            ),
            EngineEvent::JobFinished {
                index,
                label,
                status,
                cache_hit,
                degradation,
                wall,
            } => format!(
                r#"{{"event":"job_finished","index":{index},"label":"{}","status":"{status}","cache_hit":{cache_hit},"degradation":"{degradation}","wall_s":{}}}"#,
                json_escape(label),
                wall.as_secs_f64()
            ),
            EngineEvent::BatchFinished { metrics: m } => format!(
                r#"{{"event":"batch_finished","jobs":{},"succeeded":{},"failed":{},"cache_hits":{},"cache_misses":{},"batch_wall_s":{},"total_job_wall_s":{},"max_job_wall_s":{},"milp_nodes":{},"milp_lp_solves":{},"milp_lazy_cuts":{},"milp_warm_starts":{},"milp_warm_eligible":{},"degraded_retried":{},"degraded_heuristic":{},"queue_wait_p50_us":{},"queue_wait_p90_us":{},"queue_wait_p99_us":{},"queue_wait_max_us":{},"convergence_reports":{},"milp_final_gap_max":{},"milp_time_to_incumbent_max_s":{}}}"#,
                m.jobs,
                m.succeeded,
                m.failed,
                m.cache_hits,
                m.cache_misses,
                m.batch_wall.as_secs_f64(),
                m.total_job_wall.as_secs_f64(),
                m.max_job_wall.as_secs_f64(),
                m.milp_nodes,
                m.milp_lp_solves,
                m.milp_lazy_cuts,
                m.milp_warm_starts,
                m.milp_warm_eligible,
                m.degraded_retried,
                m.degraded_heuristic,
                m.queue_wait_p50_us,
                m.queue_wait_p90_us,
                m.queue_wait_p99_us,
                m.queue_wait_max_us,
                m.convergence_reports,
                m.milp_final_gap_max,
                m.milp_time_to_incumbent_max.as_secs_f64(),
            ),
        };
        let mut w = self.writer.lock().expect("sink lock");
        let _ = writeln!(w, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_wellformed() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&EngineEvent::JobStarted {
            index: 0,
            label: "a \"quoted\"\nlabel".into(),
        });
        sink.emit(&EngineEvent::JobFinished {
            index: 0,
            label: "x".into(),
            status: "ok",
            cache_hit: true,
            degradation: "exact",
            wall: Duration::from_millis(2),
        });
        sink.emit(&EngineEvent::BatchFinished {
            metrics: BatchMetrics {
                jobs: 1,
                succeeded: 1,
                ..Default::default()
            },
        });
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#"\"quoted\"\n"#));
        assert!(lines[1].contains(r#""status":"ok""#));
        assert!(lines[1].contains(r#""degradation":"exact""#));
        assert!(lines[2].contains(r#""event":"batch_finished""#));
        assert!(lines[2].contains(r#""degraded_retried":0"#));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            // Balanced quotes: an even count of unescaped '"'.
            let unescaped = l
                .replace("\\\\", "")
                .replace("\\\"", "")
                .matches('"')
                .count();
            assert_eq!(unescaped % 2, 0, "line: {l}");
        }
    }

    #[test]
    fn record_aggregates_both_ways() {
        let mut m = BatchMetrics::default();
        m.record(&Err(JobError::DeadlineExceeded));
        assert_eq!(m.jobs, 1);
        assert_eq!(m.failed, 1);
        assert_eq!(m.cache_misses, 1);
        assert!(m.summary().contains("1 jobs"));
    }
}
