//! Content-addressed design cache.
//!
//! Two jobs produce the same design and report whenever their network,
//! synthesis options and evaluation parameters agree — synthesis is
//! deterministic. The cache keys on a *canonical byte encoding* of those
//! inputs (no hashing, so no collision risk): every integer little-endian,
//! every float via [`f64::to_bits`], every enum as a tag byte plus
//! payload. Two fields are deliberately excluded:
//!
//! * the job **label** — it only decorates the report, so hits are
//!   relabelled on the way out;
//! * the **deadline** — a deadline is a hard stop that never alters a
//!   synthesis that completes within it, and only completed syntheses are
//!   cached, so cached results are deadline-independent. A consequence:
//!   a job whose key is already cached succeeds even with an expired
//!   deadline, because the budget caps synthesis work and a hit costs
//!   none.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use xring_core::{Traffic, XRingDesign};
use xring_phot::RouterReport;

use crate::job::SynthesisJob;

/// The canonical cache key of a job: its full synthesis + evaluation
/// input, byte-encoded. Equal keys imply equal designs and (label aside)
/// equal reports.
pub fn canonical_key(job: &SynthesisJob) -> Vec<u8> {
    let mut k = Vec::with_capacity(256);
    let f = |k: &mut Vec<u8>, v: f64| k.extend_from_slice(&v.to_bits().to_le_bytes());
    let u = |k: &mut Vec<u8>, v: usize| k.extend_from_slice(&(v as u64).to_le_bytes());

    // Network: node count then positions in index order.
    u(&mut k, job.net.len());
    for p in job.net.positions() {
        k.extend_from_slice(&p.x.to_le_bytes());
        k.extend_from_slice(&p.y.to_le_bytes());
    }

    // Synthesis options (deadline deliberately excluded, see module docs).
    let o = &job.options;
    k.push(o.ring_algorithm as u8);
    k.push(o.degradation as u8);
    k.push(o.lp_backend as u8);
    u(&mut k, o.max_wavelengths);
    u(&mut k, o.max_waveguides);
    k.push(u8::from(o.shortcuts));
    k.push(u8::from(o.openings));
    k.push(u8::from(o.pdn));
    k.extend_from_slice(&o.spacing.a1_um.to_le_bytes());
    k.extend_from_slice(&o.spacing.a2_um.to_le_bytes());
    k.extend_from_slice(&o.laser.x.to_le_bytes());
    k.extend_from_slice(&o.laser.y.to_le_bytes());
    match &o.traffic {
        Traffic::AllToAll => k.push(0),
        Traffic::Custom(pairs) => {
            k.push(1);
            u(&mut k, pairs.len());
            for (a, b) in pairs {
                k.extend_from_slice(&a.0.to_le_bytes());
                k.extend_from_slice(&b.0.to_le_bytes());
            }
        }
        Traffic::NearestNeighbors(n) => {
            k.push(2);
            u(&mut k, *n);
        }
    }
    for loss in [&o.loss, &job.loss] {
        f(&mut k, loss.propagation_db_per_cm);
        f(&mut k, loss.crossing_db);
        f(&mut k, loss.drop_db);
        f(&mut k, loss.through_db);
        f(&mut k, loss.bend_db);
        f(&mut k, loss.photodetector_db);
        f(&mut k, loss.splitter_excess_db);
    }

    // Evaluation parameters.
    match &job.xtalk {
        None => k.push(0),
        Some(x) => {
            k.push(1);
            f(&mut k, x.crossing_leak_db);
            f(&mut k, x.through_leak_db);
            f(&mut k, x.drop_leak_db);
        }
    }
    f(&mut k, job.power.sensitivity_dbm);
    f(&mut k, job.power.laser_efficiency);
    k
}

/// A cached outcome: the synthesized design plus its evaluated report.
type CachedDesign = (Arc<XRingDesign>, RouterReport);

/// An in-memory, thread-safe design cache shared by every job an
/// [`Engine`](crate::Engine) runs. Only successful syntheses are stored;
/// designs are handed out as [`Arc`]s so hits cost a pointer clone.
#[derive(Debug, Default)]
pub struct DesignCache {
    entries: Mutex<HashMap<Vec<u8>, CachedDesign>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

/// Whether a cached design still satisfies the invariants it was stored
/// with. Entries are validated on every read — a corrupted design (bit
/// rot, an injected fault, a bug elsewhere) must never be served.
fn entry_is_intact(design: &XRingDesign) -> bool {
    design.provenance.audit.is_clean()
        && design.layout.signals.len() == design.plan.routes.len()
        && design.layout.validate().is_ok()
}

impl DesignCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `key`, counting a hit or miss. On a hit the cached report
    /// is relabelled to `label` (the label is not part of the key).
    ///
    /// The entry is validated before it is served: a design whose audit
    /// is not clean or whose layout no longer self-validates is *evicted*
    /// and the lookup counts as a miss, so the caller re-synthesizes and
    /// re-inserts a good entry.
    pub fn lookup(&self, key: &[u8], label: &str) -> Option<(Arc<XRingDesign>, RouterReport)> {
        let mut entries = self.entries.lock().expect("cache lock");
        match entries.get(key) {
            Some((design, report)) if entry_is_intact(design) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                xring_obs::counter("cache.hits", 1);
                let mut report = report.clone();
                report.label = label.to_owned();
                Some((Arc::clone(design), report))
            }
            Some(_) => {
                entries.remove(key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                xring_obs::counter("cache.evictions", 1);
                xring_obs::counter("cache.misses", 1);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                xring_obs::counter("cache.misses", 1);
                None
            }
        }
    }

    /// Stores a freshly synthesized design. Concurrent duplicate inserts
    /// (two workers racing on the same key) keep the first entry so
    /// already-shared `Arc`s stay canonical. Designs that fail the
    /// intactness check (unaudited, dirty audit, misaligned layout) are
    /// refused — the cache never holds an entry it would evict on read.
    pub fn insert(&self, key: Vec<u8>, design: Arc<XRingDesign>, report: RouterReport) {
        if !entry_is_intact(&design) {
            return;
        }
        let mut entries = self.entries.lock().expect("cache lock");
        entries.entry(key).or_insert((design, report));
    }

    /// Cache hits counted so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses counted so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Corrupted entries evicted on read so far.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Corrupts the entry at `key` in place (its mapped signals are
    /// cleared, desynchronizing layout and plan) and reports whether an
    /// entry was there. Fault-injection hook: the next lookup must detect
    /// the damage, evict the entry and fall through to re-synthesis.
    #[cfg(any(test, feature = "fault-inject"))]
    pub fn corrupt(&self, key: &[u8]) -> bool {
        let mut entries = self.entries.lock().expect("cache lock");
        match entries.get_mut(key) {
            Some((design, _)) => {
                let mut broken = (**design).clone();
                broken.layout.signals.clear();
                *design = Arc::new(broken);
                true
            }
            None => false,
        }
    }

    /// Number of distinct designs stored.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use xring_core::{NetworkSpec, SynthesisOptions};

    fn job(label: &str, wl: usize) -> SynthesisJob {
        SynthesisJob::new(
            label,
            NetworkSpec::proton_8(),
            SynthesisOptions::with_wavelengths(wl),
        )
    }

    #[test]
    fn label_and_deadline_do_not_affect_the_key() {
        let a = canonical_key(&job("a", 8));
        let b = canonical_key(&job("b", 8));
        let c = canonical_key(&job("a", 8).with_deadline(Duration::from_secs(1)));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn every_synthesis_input_perturbs_the_key() {
        let base = canonical_key(&job("x", 8));
        assert_ne!(base, canonical_key(&job("x", 4)));
        let mut other = job("x", 8);
        other.options.shortcuts = false;
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.net = NetworkSpec::psion_16();
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.loss.crossing_db *= 2.0;
        assert_ne!(base, canonical_key(&other));
        let other = job("x", 8).without_crosstalk();
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.traffic = Traffic::NearestNeighbors(3);
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.degradation = xring_core::DegradationPolicy::Allow;
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.lp_backend = xring_core::LpBackendKind::Dense;
        assert_ne!(base, canonical_key(&other));
    }

    #[test]
    fn corrupted_entries_are_evicted_on_read() {
        let cache = DesignCache::new();
        let j = job("j", 4);
        let key = canonical_key(&j);
        let design = Arc::new(
            xring_core::Synthesizer::new(j.options.clone())
                .synthesize(&j.net)
                .expect("synthesized"),
        );
        let report = design.report("j", &j.loss, j.xtalk.as_ref(), &j.power);
        cache.insert(key.clone(), Arc::clone(&design), report.clone());
        assert!(cache.lookup(&key, "j").is_some());

        assert!(cache.corrupt(&key));
        assert!(cache.lookup(&key, "j").is_none(), "corrupt entry served");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 0, "corrupt entry not removed");

        // Re-inserting a good design heals the slot.
        cache.insert(key.clone(), design, report);
        assert!(cache.lookup(&key, "j").is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn unaudited_designs_are_refused() {
        let cache = DesignCache::new();
        let j = job("j", 4);
        let key = canonical_key(&j);
        let mut design = xring_core::Synthesizer::new(j.options.clone())
            .synthesize(&j.net)
            .expect("synthesized");
        let report = design.report("j", &j.loss, j.xtalk.as_ref(), &j.power);
        design.provenance.audit = Default::default(); // strip the audit
        cache.insert(key.clone(), Arc::new(design), report);
        assert_eq!(cache.len(), 0, "unaudited design was cached");
        assert!(cache.lookup(&key, "j").is_none());
    }

    #[test]
    fn hits_relabel_and_count() {
        let cache = DesignCache::new();
        let j = job("first", 4);
        let key = canonical_key(&j);
        assert!(cache.lookup(&key, "first").is_none());
        let design = Arc::new(
            xring_core::Synthesizer::new(j.options.clone())
                .synthesize(&j.net)
                .expect("synthesized"),
        );
        let report = design.report("first", &j.loss, j.xtalk.as_ref(), &j.power);
        cache.insert(key.clone(), design, report);
        let (_, hit) = cache.lookup(&key, "second").expect("hit");
        assert_eq!(hit.label, "second");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }
}
