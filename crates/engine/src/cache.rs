//! Content-addressed design cache.
//!
//! Two jobs produce the same design and report whenever their network,
//! synthesis options and evaluation parameters agree — synthesis is
//! deterministic. The cache keys on a *canonical byte encoding* of those
//! inputs (no hashing, so no collision risk): every integer little-endian,
//! every float via [`f64::to_bits`], every enum as a tag byte plus
//! payload. Two fields are deliberately excluded:
//!
//! * the job **label** — it only decorates the report, so hits are
//!   relabelled on the way out;
//! * the **deadline** — a deadline is a hard stop that never alters a
//!   synthesis that completes within it, and only completed syntheses are
//!   cached, so cached results are deadline-independent. A consequence:
//!   a job whose key is already cached succeeds even with an expired
//!   deadline, because the budget caps synthesis work and a hit costs
//!   none.
//!
//! # Memory bound
//!
//! By default the cache grows without bound — the historical behaviour,
//! right for one-shot batches whose working set is the job list itself.
//! Long-running consumers (the `xring-serve` daemon, parameter sweeps
//! that never repeat a point) construct it with
//! [`DesignCache::with_byte_budget`]: every entry is charged an
//! estimated deep size ([`approx_entry_bytes`]) and the least recently
//! *used* entries are evicted until the total fits the budget again.
//! Recency is bumped on hits, so a hot design survives a scan of cold
//! ones. Evictions are observable through
//! [`lru_evictions`](DesignCache::lru_evictions) /
//! [`evicted_bytes`](DesignCache::evicted_bytes) and the
//! `cache.evict_bytes` counter.

//! # Phase artifacts
//!
//! Besides whole designs, the cache doubles as the engine's
//! [`ArtifactStore`]: each pipeline phase's output (ring, shortcuts,
//! mapping, opening, PDN) is stored under an `(phase, content key)`
//! address derived from [`PhaseKeys`](xring_core::PhaseKeys). Artifacts
//! share the byte budget and the recency queue with whole designs, so a
//! hot edit loop keeps its phase prefix resident while cold designs age
//! out. Unlike whole-design inserts (which keep the first entry so
//! shared `Arc`s stay canonical), artifact puts *overwrite*: the
//! replaced entry's bytes are released and its recency-queue pairs are
//! deduped on the spot, so byte accounting stays exact across
//! overwrites.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use xring_core::{ArtifactStore, PhaseArtifact, PhaseId, Traffic, XRingDesign};
use xring_phot::RouterReport;

use crate::job::SynthesisJob;

/// The canonical cache key of a job: its full synthesis + evaluation
/// input, byte-encoded. Equal keys imply equal designs and (label aside)
/// equal reports.
pub fn canonical_key(job: &SynthesisJob) -> Vec<u8> {
    let mut k = Vec::with_capacity(256);
    let f = |k: &mut Vec<u8>, v: f64| k.extend_from_slice(&v.to_bits().to_le_bytes());
    let u = |k: &mut Vec<u8>, v: usize| k.extend_from_slice(&(v as u64).to_le_bytes());

    // Network: node count then positions in index order.
    u(&mut k, job.net.len());
    for p in job.net.positions() {
        k.extend_from_slice(&p.x.to_le_bytes());
        k.extend_from_slice(&p.y.to_le_bytes());
    }

    // Synthesis options (deadline deliberately excluded, see module docs).
    let o = &job.options;
    k.push(o.ring_algorithm as u8);
    k.push(o.degradation as u8);
    k.push(o.lp_backend as u8);
    // Pricing and factorization can steer the simplex to a different
    // (equally optimal) vertex, i.e. a different design — they key.
    // `solver_threads` is deliberately excluded: the parallel search is
    // deterministic across thread counts, so the design is identical
    // and a cache hit is correct.
    k.push(o.pricing as u8);
    k.push(o.factorization as u8);
    u(&mut k, o.max_wavelengths);
    u(&mut k, o.max_waveguides);
    k.push(u8::from(o.shortcuts));
    k.push(u8::from(o.openings));
    k.push(u8::from(o.pdn));
    k.extend_from_slice(&o.spacing.a1_um.to_le_bytes());
    k.extend_from_slice(&o.spacing.a2_um.to_le_bytes());
    k.extend_from_slice(&o.laser.x.to_le_bytes());
    k.extend_from_slice(&o.laser.y.to_le_bytes());
    match &o.traffic {
        Traffic::AllToAll => k.push(0),
        Traffic::Custom(pairs) => {
            k.push(1);
            u(&mut k, pairs.len());
            for (a, b) in pairs {
                k.extend_from_slice(&a.0.to_le_bytes());
                k.extend_from_slice(&b.0.to_le_bytes());
            }
        }
        Traffic::NearestNeighbors(n) => {
            k.push(2);
            u(&mut k, *n);
        }
        Traffic::Hotspot { hotspots, seed } => {
            k.push(3);
            u(&mut k, *hotspots);
            k.extend_from_slice(&seed.to_le_bytes());
        }
        Traffic::Permutation { seed } => {
            k.push(4);
            k.extend_from_slice(&seed.to_le_bytes());
        }
    }
    u(&mut k, o.spares.k_wavelengths);
    u(&mut k, o.spares.k_mrrs);
    for loss in [&o.loss, &job.loss] {
        f(&mut k, loss.propagation_db_per_cm);
        f(&mut k, loss.crossing_db);
        f(&mut k, loss.drop_db);
        f(&mut k, loss.through_db);
        f(&mut k, loss.bend_db);
        f(&mut k, loss.photodetector_db);
        f(&mut k, loss.splitter_excess_db);
    }

    // Evaluation parameters.
    match &job.xtalk {
        None => k.push(0),
        Some(x) => {
            k.push(1);
            f(&mut k, x.crossing_leak_db);
            f(&mut k, x.through_leak_db);
            f(&mut k, x.drop_leak_db);
        }
    }
    f(&mut k, job.power.sensitivity_dbm);
    f(&mut k, job.power.laser_efficiency);
    k
}

/// Estimated deep size of a cached entry (key + design + report), in
/// bytes. Deliberately an *estimate*: the point is a stable, deterministic
/// charge proportional to the design's real heap footprint so a byte
/// budget means something, not an exact allocator accounting. Per-element
/// constants are rounded up from the concrete struct sizes so the
/// estimate errs toward over-charging (the budget is a ceiling, not a
/// target).
pub fn approx_entry_bytes(key_len: usize, design: &XRingDesign, report: &RouterReport) -> usize {
    const PER_NODE: usize = 64; // position + cycle order/position/route rows
    const PER_SIGNAL: usize = 96; // SignalSpec fixed part + route entry
    const PER_HOP: usize = 64; // Hop: station indices, wavelength, geometry
    const PER_WAVEGUIDE: usize = 160; // polyline points + lane headers
    const PER_LANE: usize = 96; // lane occupancy vectors
    const PER_SHORTCUT: usize = 96;
    const PER_PDN_TREE: usize = 192;
    const PER_PDN_SENDER: usize = 48; // BTreeMap node for a sender loss
    const FIXED: usize = 1_024; // struct shells, provenance, stats

    let hops: usize = design.layout.signals.iter().map(|s| s.hops.len()).sum();
    let lanes: usize = design
        .plan
        .ring_waveguides
        .iter()
        .map(|w| w.lanes.len())
        .sum();
    let pdn = design.pdn.as_ref().map_or(0, |p| {
        p.trees.len() * PER_PDN_TREE
            + p.sender_loss_db.len() * PER_PDN_SENDER
            + p.crossed_waveguides.len() * 8
    });
    FIXED
        + key_len
        + design.net.len() * PER_NODE
        + design.layout.signals.len() * PER_SIGNAL
        + hops * PER_HOP
        + design.layout.waveguides.len() * PER_WAVEGUIDE
        + design.plan.routes.len() * PER_SIGNAL
        + lanes * PER_LANE
        + design.shortcuts.shortcuts.len() * PER_SHORTCUT
        + pdn
        + report.label.len()
        + std::mem::size_of::<RouterReport>()
}

/// What one cache slot holds: a whole design + report, or one pipeline
/// phase's artifact.
enum Payload {
    Design {
        design: Arc<XRingDesign>,
        report: RouterReport,
    },
    Artifact(PhaseArtifact),
}

/// One cached outcome plus its byte charge and recency stamp.
struct Entry {
    payload: Payload,
    bytes: usize,
    /// Recency sequence number; bumped on every hit. The recency queue
    /// holds `(seq, key)` pairs and entries whose stamp no longer
    /// matches are stale queue residue, skipped during eviction.
    seq: u64,
}

/// The byte address of a phase artifact: a tag byte, the phase, then the
/// content key — exactly 10 bytes. Canonical design keys encode at least
/// a node count plus three positions (> 50 bytes), so the two keyspaces
/// cannot collide.
fn artifact_key(phase: PhaseId, key: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(10);
    k.push(0xA5);
    k.push(match phase {
        PhaseId::Ring => 1,
        PhaseId::Shortcut => 2,
        PhaseId::Mapping => 3,
        PhaseId::Opening => 4,
        PhaseId::Pdn => 5,
    });
    k.extend_from_slice(&key.to_le_bytes());
    k
}

/// Dense index of a phase for the per-phase counter arrays.
fn phase_index(phase: PhaseId) -> usize {
    match phase {
        PhaseId::Ring => 0,
        PhaseId::Shortcut => 1,
        PhaseId::Mapping => 2,
        PhaseId::Opening => 3,
        PhaseId::Pdn => 4,
    }
}

/// The interior of the cache: map, recency queue and byte totals, all
/// under one lock so eviction decisions are consistent.
#[derive(Default)]
struct Inner {
    map: HashMap<Vec<u8>, Entry>,
    /// Lazy LRU queue: `(seq, key)` in bump order. A key may appear
    /// multiple times; only the pair matching the entry's current `seq`
    /// is live.
    recency: VecDeque<(u64, Vec<u8>)>,
    total_bytes: usize,
    next_seq: u64,
}

impl Inner {
    fn bump(&mut self, key: &[u8]) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(entry) = self.map.get_mut(key) {
            entry.seq = seq;
            self.recency.push_back((seq, key.to_vec()));
        }
        // Stale pairs accumulate one per hit; compact when the queue is
        // far larger than the live map so it stays O(entries).
        if self.recency.len() > 4 * self.map.len() + 16 {
            let map = &self.map;
            self.recency
                .retain(|(seq, key)| map.get(key).is_some_and(|e| e.seq == *seq));
        }
    }

    fn remove(&mut self, key: &[u8]) -> Option<Entry> {
        let entry = self.map.remove(key)?;
        self.total_bytes -= entry.bytes;
        Some(entry)
    }
}

/// An in-memory, thread-safe design cache shared by every job an
/// [`Engine`](crate::Engine) runs (and, through an [`Arc`], across
/// engines — the serve daemon shares one cache over all requests). Only
/// successful syntheses are stored; designs are handed out as [`Arc`]s
/// so hits cost a pointer clone.
#[derive(Default)]
pub struct DesignCache {
    inner: Mutex<Inner>,
    /// Byte budget; `None` = unbounded (the historical behaviour).
    byte_budget: Option<usize>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    lru_evictions: AtomicUsize,
    evicted_bytes: AtomicUsize,
    /// Phase-artifact hits, indexed by [`phase_index`].
    phase_hits: [AtomicUsize; 5],
    /// Phase-artifact misses, indexed by [`phase_index`].
    phase_misses: [AtomicUsize; 5],
}

impl std::fmt::Debug for DesignCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignCache")
            .field("len", &self.len())
            .field("bytes", &self.bytes())
            .field("byte_budget", &self.byte_budget)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// Whether a cached design still satisfies the invariants it was stored
/// with. Entries are validated on every read — a corrupted design (bit
/// rot, an injected fault, a bug elsewhere) must never be served.
fn entry_is_intact(design: &XRingDesign) -> bool {
    design.provenance.audit.is_clean()
        && design.layout.signals.len() == design.plan.routes.len()
        && design.layout.validate().is_ok()
}

impl DesignCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that evicts least-recently-used entries once the
    /// estimated total size exceeds `budget` bytes. An entry larger than
    /// the whole budget is never cached at all (caching it would evict
    /// everything else for a single design).
    pub fn with_byte_budget(budget: usize) -> Self {
        DesignCache {
            byte_budget: Some(budget),
            ..Self::default()
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("cache lock")
    }

    /// Looks up `key`, counting a hit or miss. On a hit the cached report
    /// is relabelled to `label` (the label is not part of the key) and the
    /// entry's recency is bumped.
    ///
    /// The entry is validated before it is served: a design whose audit
    /// is not clean or whose layout no longer self-validates is *evicted*
    /// and the lookup counts as a miss, so the caller re-synthesizes and
    /// re-inserts a good entry.
    pub fn lookup(&self, key: &[u8], label: &str) -> Option<(Arc<XRingDesign>, RouterReport)> {
        let mut inner = self.lock();
        match inner.map.get(key) {
            Some(Entry {
                payload: Payload::Design { design, report },
                ..
            }) if entry_is_intact(design) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                xring_obs::counter("cache.hits", 1);
                let design = Arc::clone(design);
                let mut report = report.clone();
                report.label = label.to_owned();
                inner.bump(key);
                Some((design, report))
            }
            Some(_) => {
                inner.remove(key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                xring_obs::counter("cache.evictions", 1);
                xring_obs::counter("cache.misses", 1);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                xring_obs::counter("cache.misses", 1);
                None
            }
        }
    }

    /// Stores a freshly synthesized design. Concurrent duplicate inserts
    /// (two workers racing on the same key) keep the first entry so
    /// already-shared `Arc`s stay canonical. Designs that fail the
    /// intactness check (unaudited, dirty audit, misaligned layout) are
    /// refused — the cache never holds an entry it would evict on read.
    ///
    /// Under a byte budget, inserting may evict least-recently-used
    /// entries until the estimated total fits again.
    pub fn insert(&self, key: Vec<u8>, design: Arc<XRingDesign>, report: RouterReport) {
        if !entry_is_intact(&design) {
            return;
        }
        let bytes = approx_entry_bytes(key.len(), &design, &report);
        if self.byte_budget.is_some_and(|budget| bytes > budget) {
            return; // one oversize entry must not flush the whole cache
        }
        let mut inner = self.lock();
        if inner.map.contains_key(&key) {
            return;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.recency.push_back((seq, key.clone()));
        inner.total_bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                payload: Payload::Design { design, report },
                bytes,
                seq,
            },
        );
        if let Some(budget) = self.byte_budget {
            self.evict_to_budget(&mut inner, budget);
        }
    }

    /// Pops stale and least-recently-used entries until the byte total
    /// fits `budget`. The just-inserted entry carries the highest `seq`,
    /// so it is considered last; oversize entries were refused before
    /// insertion, so the loop always terminates under budget.
    fn evict_to_budget(&self, inner: &mut Inner, budget: usize) {
        while inner.total_bytes > budget {
            let Some((seq, key)) = inner.recency.pop_front() else {
                return; // unreachable: bytes imply live entries
            };
            if inner.map.get(&key).is_none_or(|e| e.seq != seq) {
                continue; // stale residue of a later bump
            }
            let entry = inner.remove(&key).expect("live entry");
            self.lru_evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_bytes.fetch_add(entry.bytes, Ordering::Relaxed);
            xring_obs::counter("cache.lru_evictions", 1);
            xring_obs::counter("cache.evict_bytes", entry.bytes as u64);
        }
    }

    /// Cache hits counted so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses counted so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Corrupted entries evicted on read so far.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries evicted to fit the byte budget so far.
    pub fn lru_evictions(&self) -> usize {
        self.lru_evictions.load(Ordering::Relaxed)
    }

    /// Total estimated bytes reclaimed by budget evictions so far.
    pub fn evicted_bytes(&self) -> usize {
        self.evicted_bytes.load(Ordering::Relaxed)
    }

    /// Estimated bytes currently held.
    pub fn bytes(&self) -> usize {
        self.lock().total_bytes
    }

    /// The configured byte budget, if any.
    pub fn byte_budget(&self) -> Option<usize> {
        self.byte_budget
    }

    /// Corrupts the entry at `key` in place (its mapped signals are
    /// cleared, desynchronizing layout and plan) and reports whether an
    /// entry was there. Fault-injection hook: the next lookup must detect
    /// the damage, evict the entry and fall through to re-synthesis.
    #[cfg(any(test, feature = "fault-inject"))]
    pub fn corrupt(&self, key: &[u8]) -> bool {
        let mut inner = self.lock();
        match inner.map.get_mut(key) {
            Some(Entry {
                payload: Payload::Design { design, .. },
                ..
            }) => {
                let mut broken = (**design).clone();
                broken.layout.signals.clear();
                *design = Arc::new(broken);
                true
            }
            _ => false,
        }
    }

    /// Corrupts the phase artifact at `(phase, key)` in place and reports
    /// whether an artifact was there. For the downstream phases the
    /// payload vectors are cleared, so a design assembled from the
    /// artifact cannot pass its audit; for the ring phase the exported
    /// basis is dropped (a performance-only corruption the warm-start
    /// path must tolerate). Fault-injection hook for the incremental
    /// path: the next re-synthesis that consumes a cleared artifact must
    /// detect the damage and fall back to a cold run.
    #[cfg(any(test, feature = "fault-inject"))]
    pub fn corrupt_artifact(&self, phase: PhaseId, key: u64) -> bool {
        let mut inner = self.lock();
        match inner.map.get_mut(&artifact_key(phase, key)) {
            Some(Entry {
                payload: Payload::Artifact(artifact),
                ..
            }) => {
                match artifact {
                    PhaseArtifact::Ring(a) => a.basis = None,
                    PhaseArtifact::Shortcut(a) => a.plan.shortcuts.clear(),
                    PhaseArtifact::Mapping(a) => a.plan.routes.clear(),
                    PhaseArtifact::Opening(a) => a.plan.routes.clear(),
                    PhaseArtifact::Pdn(a) => {
                        if let Some(p) = &mut a.pdn {
                            p.sender_loss_db.clear();
                        }
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Number of distinct entries stored (designs and phase artifacts).
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The exported LP basis of the ring artifact stored under
    /// `ring_key`, if any — the warm-start hint for a ring-dirty
    /// re-synthesis. Unlike [`ArtifactStore::get_artifact`], this does
    /// not count a phase hit or miss (the caller is not *consuming* the
    /// artifact for its own phase, it is seeding a different key's
    /// solve), but it does bump the entry's recency.
    pub fn warm_basis_for(&self, ring_key: u64) -> Option<xring_core::Basis> {
        let addr = artifact_key(PhaseId::Ring, ring_key);
        let mut inner = self.lock();
        let basis = match inner.map.get(&addr) {
            Some(Entry {
                payload: Payload::Artifact(PhaseArtifact::Ring(a)),
                ..
            }) => a.basis.clone(),
            _ => None,
        };
        if basis.is_some() {
            inner.bump(&addr);
        }
        basis
    }

    /// Phase-artifact hits for one phase.
    pub fn phase_hits(&self, phase: PhaseId) -> usize {
        self.phase_hits[phase_index(phase)].load(Ordering::Relaxed)
    }

    /// Phase-artifact misses for one phase.
    pub fn phase_misses(&self, phase: PhaseId) -> usize {
        self.phase_misses[phase_index(phase)].load(Ordering::Relaxed)
    }

    /// Phase-artifact hits across all phases.
    pub fn artifact_hits(&self) -> usize {
        self.phase_hits
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Phase-artifact misses across all phases.
    pub fn artifact_misses(&self) -> usize {
        self.phase_misses
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

impl ArtifactStore for DesignCache {
    /// Phase-artifact lookup; counts a per-phase hit or miss and bumps
    /// the entry's recency on hit.
    fn get_artifact(&self, phase: PhaseId, key: u64) -> Option<PhaseArtifact> {
        let addr = artifact_key(phase, key);
        let mut inner = self.lock();
        match inner.map.get(&addr) {
            Some(Entry {
                payload: Payload::Artifact(artifact),
                ..
            }) => {
                let artifact = artifact.clone();
                self.phase_hits[phase_index(phase)].fetch_add(1, Ordering::Relaxed);
                xring_obs::counter("cache.artifact_hits", 1);
                inner.bump(&addr);
                Some(artifact)
            }
            _ => {
                self.phase_misses[phase_index(phase)].fetch_add(1, Ordering::Relaxed);
                xring_obs::counter("cache.artifact_misses", 1);
                None
            }
        }
    }

    /// Stores a phase artifact, *overwriting* any existing entry at the
    /// same address: the old entry's bytes are released and its stale
    /// recency pairs are deduped immediately, so byte accounting stays
    /// exact. Under a byte budget, an artifact larger than the whole
    /// budget is refused and eviction runs as for design inserts.
    fn put_artifact(&self, phase: PhaseId, key: u64, artifact: PhaseArtifact) {
        let addr = artifact_key(phase, key);
        let bytes = addr.len() + artifact.approx_bytes();
        if self.byte_budget.is_some_and(|budget| bytes > budget) {
            return;
        }
        let mut inner = self.lock();
        if inner.remove(&addr).is_some() {
            // Dedupe the overwritten key's queue pairs now rather than
            // leaving stale residue for compaction to find later.
            inner.recency.retain(|(_, k)| k != &addr);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.recency.push_back((seq, addr.clone()));
        inner.total_bytes += bytes;
        inner.map.insert(
            addr,
            Entry {
                payload: Payload::Artifact(artifact),
                bytes,
                seq,
            },
        );
        if let Some(budget) = self.byte_budget {
            self.evict_to_budget(&mut inner, budget);
        }
    }

    /// Drops a phase artifact (and its recency pairs), if present.
    fn evict_artifact(&self, phase: PhaseId, key: u64) {
        let addr = artifact_key(phase, key);
        let mut inner = self.lock();
        if inner.remove(&addr).is_some() {
            inner.recency.retain(|(_, k)| k != &addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use xring_core::{NetworkSpec, SynthesisOptions};

    fn job(label: &str, wl: usize) -> SynthesisJob {
        SynthesisJob::new(
            label,
            NetworkSpec::proton_8(),
            SynthesisOptions::with_wavelengths(wl),
        )
    }

    fn synthesized(j: &SynthesisJob) -> (Vec<u8>, Arc<XRingDesign>, RouterReport) {
        let key = canonical_key(j);
        let design = Arc::new(
            xring_core::Synthesizer::new(j.options.clone())
                .synthesize(&j.net)
                .expect("synthesized"),
        );
        let report = design.report(j.label.clone(), &j.loss, j.xtalk.as_ref(), &j.power);
        (key, design, report)
    }

    #[test]
    fn label_and_deadline_do_not_affect_the_key() {
        let a = canonical_key(&job("a", 8));
        let b = canonical_key(&job("b", 8));
        let c = canonical_key(&job("a", 8).with_deadline(Duration::from_secs(1)));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn every_synthesis_input_perturbs_the_key() {
        let base = canonical_key(&job("x", 8));
        assert_ne!(base, canonical_key(&job("x", 4)));
        let mut other = job("x", 8);
        other.options.shortcuts = false;
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.net = NetworkSpec::psion_16();
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.loss.crossing_db *= 2.0;
        assert_ne!(base, canonical_key(&other));
        let other = job("x", 8).without_crosstalk();
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.traffic = Traffic::NearestNeighbors(3);
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.degradation = xring_core::DegradationPolicy::Allow;
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.lp_backend = xring_core::LpBackendKind::Dense;
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.pricing = xring_core::PricingKind::Devex;
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.factorization = xring_core::FactorizationKind::DenseEta;
        assert_ne!(base, canonical_key(&other));
        // Thread count never changes the design (deterministic parallel
        // search), so it must NOT fragment the cache.
        let mut other = job("x", 8);
        other.options.solver_threads = 8;
        assert_eq!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.spares = xring_core::SpareConfig::uniform(1);
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.spares = xring_core::SpareConfig {
            k_wavelengths: 1,
            k_mrrs: 0,
        };
        assert_ne!(base, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.traffic = Traffic::Hotspot {
            hotspots: 2,
            seed: 9,
        };
        let hotspot = canonical_key(&other);
        assert_ne!(base, hotspot);
        other.options.traffic = Traffic::Hotspot {
            hotspots: 2,
            seed: 10,
        };
        assert_ne!(hotspot, canonical_key(&other));
        let mut other = job("x", 8);
        other.options.traffic = Traffic::Permutation { seed: 9 };
        assert_ne!(base, canonical_key(&other));
    }

    #[test]
    fn corrupted_entries_are_evicted_on_read() {
        let cache = DesignCache::new();
        let j = job("j", 4);
        let (key, design, report) = synthesized(&j);
        cache.insert(key.clone(), Arc::clone(&design), report.clone());
        assert!(cache.lookup(&key, "j").is_some());
        assert!(cache.bytes() > 0);

        assert!(cache.corrupt(&key));
        assert!(cache.lookup(&key, "j").is_none(), "corrupt entry served");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 0, "corrupt entry not removed");
        assert_eq!(cache.bytes(), 0, "corrupt eviction must release bytes");

        // Re-inserting a good design heals the slot.
        cache.insert(key.clone(), design, report);
        assert!(cache.lookup(&key, "j").is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn unaudited_designs_are_refused() {
        let cache = DesignCache::new();
        let j = job("j", 4);
        let key = canonical_key(&j);
        let mut design = xring_core::Synthesizer::new(j.options.clone())
            .synthesize(&j.net)
            .expect("synthesized");
        let report = design.report("j", &j.loss, j.xtalk.as_ref(), &j.power);
        design.provenance.audit = Default::default(); // strip the audit
        cache.insert(key.clone(), Arc::new(design), report);
        assert_eq!(cache.len(), 0, "unaudited design was cached");
        assert!(cache.lookup(&key, "j").is_none());
    }

    #[test]
    fn hits_relabel_and_count() {
        let cache = DesignCache::new();
        let j = job("first", 4);
        let key = canonical_key(&j);
        assert!(cache.lookup(&key, "first").is_none());
        let (_, design, report) = synthesized(&j);
        cache.insert(key.clone(), design, report);
        let (_, hit) = cache.lookup(&key, "second").expect("hit");
        assert_eq!(hit.label, "second");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        // Size three distinct entries with an unbounded cache first.
        let jobs: Vec<SynthesisJob> = [2usize, 4, 8]
            .iter()
            .map(|&wl| job(&format!("wl{wl}"), wl))
            .collect();
        let entries: Vec<_> = jobs.iter().map(synthesized).collect();
        let sizes: Vec<usize> = entries
            .iter()
            .map(|(k, d, r)| approx_entry_bytes(k.len(), d, r))
            .collect();

        // Budget fits the two largest entries but not all three.
        let budget = sizes[0] + sizes[1] + sizes[2] - sizes.iter().copied().min().unwrap() / 2;
        let cache = DesignCache::with_byte_budget(budget);
        assert_eq!(cache.byte_budget(), Some(budget));

        let (ka, da, ra) = &entries[0];
        let (kb, db, rb) = &entries[1];
        let (kc, dc, rc) = &entries[2];
        cache.insert(ka.clone(), Arc::clone(da), ra.clone());
        cache.insert(kb.clone(), Arc::clone(db), rb.clone());
        assert_eq!(cache.len(), 2);

        // Touch A so B becomes the least recently used entry...
        assert!(cache.lookup(ka, "bump").is_some());
        // ...then inserting C must evict B, not A.
        cache.insert(kc.clone(), Arc::clone(dc), rc.clone());
        assert!(cache.lookup(ka, "a").is_some(), "recently used A evicted");
        assert!(cache.lookup(kc, "c").is_some(), "fresh C evicted");
        assert!(cache.lookup(kb, "b").is_none(), "LRU B survived");
        assert!(cache.bytes() <= budget, "over budget after eviction");
        assert_eq!(cache.lru_evictions(), 1);
        assert_eq!(cache.evicted_bytes(), sizes[1]);
    }

    #[test]
    fn oversize_entries_are_never_cached() {
        let j = job("big", 4);
        let (key, design, report) = synthesized(&j);
        let cache = DesignCache::with_byte_budget(16); // far below any design
        cache.insert(key.clone(), design, report);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.lru_evictions(), 0, "refusal is not an eviction");
    }

    #[test]
    fn unbounded_cache_never_evicts_by_size() {
        let cache = DesignCache::new();
        assert_eq!(cache.byte_budget(), None);
        for wl in [2usize, 4, 8] {
            let j = job(&format!("wl{wl}"), wl);
            let (key, design, report) = synthesized(&j);
            cache.insert(key, design, report);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.lru_evictions(), 0);
        assert!(cache.bytes() > 0);
    }

    fn shortcut_artifact(n: usize) -> PhaseArtifact {
        use xring_core::{RingBuilder, ShortcutArtifact};
        let net = NetworkSpec::psion_16();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let mut plan = xring_core::plan_shortcuts(&net, &ring.cycle);
        plan.shortcuts.truncate(n);
        PhaseArtifact::Shortcut(ShortcutArtifact { plan })
    }

    #[test]
    fn artifact_roundtrip_counts_phase_hits_and_misses() {
        let cache = DesignCache::new();
        assert!(cache.get_artifact(PhaseId::Shortcut, 7).is_none());
        assert_eq!(cache.phase_misses(PhaseId::Shortcut), 1);
        cache.put_artifact(PhaseId::Shortcut, 7, shortcut_artifact(2));
        assert!(matches!(
            cache.get_artifact(PhaseId::Shortcut, 7),
            Some(PhaseArtifact::Shortcut(_))
        ));
        assert_eq!(cache.phase_hits(PhaseId::Shortcut), 1);
        assert_eq!(cache.artifact_hits(), 1);
        assert_eq!(cache.artifact_misses(), 1);
        // Same content key under a different phase is a distinct address.
        assert!(cache.get_artifact(PhaseId::Ring, 7).is_none());
        assert_eq!(cache.phase_misses(PhaseId::Ring), 1);
        cache.evict_artifact(PhaseId::Shortcut, 7);
        assert!(cache.get_artifact(PhaseId::Shortcut, 7).is_none());
    }

    #[test]
    fn artifact_overwrite_keeps_byte_accounting_exact() {
        // The regression this guards: an overwrite that does not release
        // the replaced entry's bytes (or leaves stale recency pairs)
        // makes the byte total drift upward until the budget evicts
        // everything. Overwrite with a *smaller* artifact and check the
        // total shrinks to exactly the new entry's charge.
        let cache = DesignCache::new();
        let big = shortcut_artifact(4);
        let small = shortcut_artifact(0);
        let big_bytes = 10 + big.approx_bytes();
        let small_bytes = 10 + small.approx_bytes();
        assert!(big_bytes > small_bytes);

        cache.put_artifact(PhaseId::Shortcut, 1, big);
        assert_eq!(cache.bytes(), big_bytes);
        cache.put_artifact(PhaseId::Shortcut, 1, small);
        assert_eq!(cache.len(), 1, "overwrite must not duplicate the entry");
        assert_eq!(
            cache.bytes(),
            small_bytes,
            "overwrite leaked the replaced entry's bytes"
        );
        cache.evict_artifact(PhaseId::Shortcut, 1);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn artifact_overwrite_dedupes_recency_pairs() {
        let cache = DesignCache::new();
        for _ in 0..10 {
            cache.put_artifact(PhaseId::Shortcut, 1, shortcut_artifact(1));
        }
        let inner = cache.lock();
        let pairs = inner
            .recency
            .iter()
            .filter(|(_, k)| k == &artifact_key(PhaseId::Shortcut, 1))
            .count();
        assert_eq!(pairs, 1, "overwrites must dedupe the recency queue");
    }

    #[test]
    fn artifact_overwrite_under_budget_does_not_evict_live_neighbours() {
        // Stale recency pairs from overwrites used to be charged against
        // the budget walk; with dedupe-on-insert, repeatedly overwriting
        // one artifact must never push a live neighbour out.
        let a = shortcut_artifact(2);
        let b = shortcut_artifact(2);
        let budget = 2 * (10 + a.approx_bytes()) + 64;
        let cache = DesignCache::with_byte_budget(budget);
        cache.put_artifact(PhaseId::Shortcut, 1, a);
        for _ in 0..50 {
            cache.put_artifact(PhaseId::Shortcut, 2, b.clone());
        }
        assert!(
            cache.get_artifact(PhaseId::Shortcut, 1).is_some(),
            "live neighbour evicted by overwrite churn"
        );
        assert!(cache.bytes() <= budget);
        assert_eq!(cache.lru_evictions(), 0);
    }

    #[test]
    fn artifacts_and_designs_share_the_byte_budget() {
        let j = job("shared", 4);
        let (key, design, report) = synthesized(&j);
        let design_bytes = approx_entry_bytes(key.len(), &design, &report);
        // Budget fits the design alone; a burst of artifacts must evict
        // it (shared accounting) rather than grow without bound.
        let cache = DesignCache::with_byte_budget(design_bytes + 256);
        cache.insert(key.clone(), design, report);
        assert!(cache.lookup(&key, "shared").is_some());
        for k in 0..64u64 {
            cache.put_artifact(PhaseId::Shortcut, k, shortcut_artifact(2));
        }
        assert!(cache.bytes() <= design_bytes + 256);
        assert!(cache.lru_evictions() > 0, "budget never enforced");
    }

    #[test]
    fn corrupt_artifact_clears_payload() {
        let cache = DesignCache::new();
        cache.put_artifact(PhaseId::Shortcut, 3, shortcut_artifact(2));
        assert!(cache.corrupt_artifact(PhaseId::Shortcut, 3));
        match cache.get_artifact(PhaseId::Shortcut, 3) {
            Some(PhaseArtifact::Shortcut(a)) => assert!(a.plan.shortcuts.is_empty()),
            other => panic!("expected corrupted shortcut artifact, got {other:?}"),
        }
        assert!(!cache.corrupt_artifact(PhaseId::Ring, 3));
    }

    #[test]
    fn recency_queue_compacts_under_repeated_hits() {
        let cache = DesignCache::with_byte_budget(usize::MAX);
        let j = job("hot", 2);
        let (key, design, report) = synthesized(&j);
        cache.insert(key.clone(), design, report);
        for _ in 0..1_000 {
            assert!(cache.lookup(&key, "hot").is_some());
        }
        let queue_len = cache.lock().recency.len();
        assert!(
            queue_len <= 4 * cache.len() + 16,
            "recency queue grew unboundedly: {queue_len}"
        );
    }
}
