//! The job model: what a batch runs and what it returns.

use std::sync::Arc;
use std::time::Duration;
use xring_core::{NetworkSpec, SynthesisError, SynthesisOptions, XRingDesign};
use xring_phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};

use crate::metrics::BatchMetrics;

/// One unit of work: synthesize a router for `net` under `options` and
/// evaluate it with the given loss/crosstalk/power parameters.
///
/// The label is carried through to the resulting [`RouterReport`] and the
/// event stream; it does not affect synthesis and is excluded from the
/// design cache key, so two jobs differing only in label share one
/// synthesis.
#[derive(Debug, Clone)]
pub struct SynthesisJob {
    /// Report label (tool/method + router, e.g. `"XRing/8 #wl=4"`).
    pub label: String,
    /// The network to synthesize for.
    pub net: NetworkSpec,
    /// Pipeline configuration, including the optional per-job deadline.
    pub options: SynthesisOptions,
    /// Loss parameters for evaluation.
    pub loss: LossParams,
    /// Crosstalk parameters (`None` disables noise evaluation, as in
    /// Table I's loss-only comparison).
    pub xtalk: Option<CrosstalkParams>,
    /// Power parameters for evaluation.
    pub power: PowerParams,
}

impl SynthesisJob {
    /// A job with default evaluation parameters (the paper's values).
    pub fn new(label: impl Into<String>, net: NetworkSpec, options: SynthesisOptions) -> Self {
        SynthesisJob {
            label: label.into(),
            net,
            options,
            loss: LossParams::default(),
            xtalk: Some(CrosstalkParams::default()),
            power: PowerParams::default(),
        }
    }

    /// Caps this job's wall-clock synthesis time. The deadline is
    /// cooperative: it is checked between pipeline steps and once per
    /// branch-and-bound node, and expiry yields
    /// [`JobError::DeadlineExceeded`] for this job only.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.options.deadline = Some(budget);
        self
    }

    /// Disables crosstalk evaluation for this job.
    pub fn without_crosstalk(mut self) -> Self {
        self.xtalk = None;
        self
    }
}

/// A successful job: the design and its evaluation.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The job's label, echoed back.
    pub label: String,
    /// The synthesized design. Shared (`Arc`) with the cache and with any
    /// other job that hit the same cache entry.
    pub design: Arc<XRingDesign>,
    /// The evaluation report, labelled with [`label`](Self::label).
    pub report: RouterReport,
    /// Wall-clock time this job spent in the worker (near zero on a
    /// cache hit).
    pub wall: Duration,
    /// Whether the design came from the cache.
    pub cache_hit: bool,
    /// How many pipeline phases were replayed from cached artifacts
    /// (0–5; only [`Engine::resynthesize`](crate::Engine::resynthesize)
    /// sets this — plain batch jobs report 0).
    pub phases_reused: usize,
}

/// Why a job failed. Failures are per-job: the rest of the batch is
/// unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's wall-clock deadline expired mid-synthesis.
    DeadlineExceeded,
    /// The synthesis pipeline reported an error.
    Synthesis(SynthesisError),
    /// The job panicked; the payload is the panic message. The worker
    /// survives and moves on to the next job.
    Panicked(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::DeadlineExceeded => write!(f, "job deadline expired"),
            JobError::Synthesis(msg) => write!(f, "synthesis failed: {msg}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<SynthesisError> for JobError {
    fn from(e: SynthesisError) -> Self {
        match e {
            SynthesisError::DeadlineExceeded => JobError::DeadlineExceeded,
            e => JobError::Synthesis(e),
        }
    }
}

/// The result of [`Engine::run_batch`](crate::Engine::run_batch):
/// one outcome per job, in submission order, plus aggregated metrics.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-job outcomes, index-aligned with the submitted jobs.
    pub outcomes: Vec<Result<JobOutput, JobError>>,
    /// Aggregated batch metrics.
    pub metrics: BatchMetrics,
}

impl BatchResult {
    /// The successful outputs, in submission order.
    pub fn successes(&self) -> impl Iterator<Item = &JobOutput> {
        self.outcomes.iter().filter_map(|o| o.as_ref().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_builder_sets_option() {
        let job = SynthesisJob::new(
            "j",
            NetworkSpec::proton_8(),
            SynthesisOptions::with_wavelengths(8),
        )
        .with_deadline(Duration::from_millis(5));
        assert_eq!(job.options.deadline, Some(Duration::from_millis(5)));
    }

    #[test]
    fn synthesis_errors_map_by_kind() {
        assert_eq!(
            JobError::from(SynthesisError::DeadlineExceeded),
            JobError::DeadlineExceeded
        );
        let other = JobError::from(SynthesisError::TooFewNodes { got: 1 });
        assert!(matches!(other, JobError::Synthesis(_)));
    }

    #[test]
    fn errors_display() {
        assert!(JobError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(JobError::Panicked("boom".into())
            .to_string()
            .contains("boom"));
    }
}
