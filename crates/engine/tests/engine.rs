//! Integration tests for the batch engine: determinism across worker
//! counts, panic isolation, deadlines and cache behaviour.

use std::sync::{Arc, Mutex};
use std::time::Duration;
use xring_core::{NetworkSpec, SynthesisOptions, Synthesizer};
use xring_engine::{BatchResult, Engine, EngineEvent, EventSink, JobError, SynthesisJob};

fn sample_jobs() -> Vec<SynthesisJob> {
    let proton = NetworkSpec::proton_8();
    vec![
        SynthesisJob::new(
            "proton/4",
            proton.clone(),
            SynthesisOptions::with_wavelengths(4),
        ),
        SynthesisJob::new(
            "proton/8",
            proton.clone(),
            SynthesisOptions::with_wavelengths(8),
        ),
        SynthesisJob::new(
            "proton/8-nopdn",
            proton,
            SynthesisOptions::with_wavelengths(8).without_pdn(),
        )
        .without_crosstalk(),
    ]
}

#[test]
fn parallel_results_match_serial_bit_for_bit() {
    let serial = Engine::new().with_workers(1).run_batch(sample_jobs());
    let parallel = Engine::new().with_workers(4).run_batch(sample_jobs());
    assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        let (s, p) = (s.as_ref().expect("ok"), p.as_ref().expect("ok"));
        // Wall-clock time is the only nondeterministic report field;
        // normalized reports must be identical.
        assert_eq!(s.report.normalized(), p.report.normalized());
        assert_eq!(s.label, p.label);
    }
}

#[test]
fn batch_matches_direct_synthesis() {
    let batch = Engine::new().run_batch(sample_jobs());
    for (job, outcome) in sample_jobs().iter().zip(&batch.outcomes) {
        let out = outcome.as_ref().expect("ok");
        let direct = Synthesizer::new(job.options.clone())
            .synthesize(&job.net)
            .expect("direct synthesis");
        let direct_report =
            direct.report(job.label.clone(), &job.loss, job.xtalk.as_ref(), &job.power);
        assert_eq!(out.report.normalized(), direct_report.normalized());
    }
    assert_eq!(batch.metrics.succeeded, 3);
    assert_eq!(batch.metrics.cache_misses, 3);
    assert!(batch.metrics.milp_nodes > 0, "MILP effort is aggregated");
}

#[test]
fn a_panicking_task_is_isolated_from_real_work() {
    let engine = Engine::new().with_workers(2);
    let net = NetworkSpec::proton_8();
    let results = engine.run_tasks(3, |i| {
        if i == 1 {
            panic!("worker {i} exploded");
        }
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&net)
            .map_err(JobError::from)?;
        Ok(design.layout.signals.len())
    });
    assert_eq!(results[0], Ok(56));
    assert_eq!(
        results[1],
        Err(JobError::Panicked("worker 1 exploded".to_owned()))
    );
    assert_eq!(results[2], Ok(56));
}

#[test]
fn an_expired_deadline_fails_only_its_own_job() {
    let net = NetworkSpec::proton_8();
    let jobs = vec![
        SynthesisJob::new("ok", net.clone(), SynthesisOptions::with_wavelengths(8)),
        // #wl=4 so the doomed job cannot be rescued by the "ok" job's
        // cache entry (see `a_cache_hit_beats_an_expired_deadline`).
        SynthesisJob::new("doomed", net, SynthesisOptions::with_wavelengths(4))
            .with_deadline(Duration::ZERO),
    ];
    let BatchResult { outcomes, metrics } = Engine::new().run_batch(jobs);
    assert!(outcomes[0].is_ok());
    assert_eq!(
        outcomes[1].as_ref().err(),
        Some(&JobError::DeadlineExceeded)
    );
    assert_eq!(metrics.succeeded, 1);
    assert_eq!(metrics.failed, 1);
}

#[test]
fn a_cache_hit_beats_an_expired_deadline() {
    // The deadline budgets wall-clock synthesis work; a cache hit costs
    // none, so a job whose inputs are already cached succeeds even with
    // a zero budget. Serial execution makes the cache state predictable.
    let net = NetworkSpec::proton_8();
    let jobs = vec![
        SynthesisJob::new("warm", net.clone(), SynthesisOptions::with_wavelengths(8)),
        SynthesisJob::new("rescued", net, SynthesisOptions::with_wavelengths(8))
            .with_deadline(Duration::ZERO),
    ];
    let batch = Engine::new().with_workers(1).run_batch(jobs);
    let rescued = batch.outcomes[1].as_ref().expect("served from cache");
    assert!(rescued.cache_hit);
    assert_eq!(batch.metrics.failed, 0);
}

#[test]
fn duplicate_jobs_share_one_synthesis() {
    let net = NetworkSpec::proton_8();
    let job =
        |label: &str| SynthesisJob::new(label, net.clone(), SynthesisOptions::with_wavelengths(8));
    let engine = Engine::new().with_workers(1);
    let batch = engine.run_batch(vec![job("first"), job("second"), job("third")]);
    assert_eq!(batch.metrics.cache_misses, 1);
    assert_eq!(batch.metrics.cache_hits, 2);
    let outs: Vec<_> = batch.successes().collect();
    assert!(Arc::ptr_eq(&outs[0].design, &outs[1].design));
    assert!(Arc::ptr_eq(&outs[0].design, &outs[2].design));
    // Labels stay per-job even though the design is shared.
    assert_eq!(outs[1].report.label, "second");
    assert_eq!(
        outs[0].report.normalized(),
        xring_phot::RouterReport {
            label: "first".to_owned(),
            ..outs[1].report.normalized()
        }
    );
}

/// Records every event, for asserting the emission contract.
#[derive(Default)]
struct CollectSink(Mutex<Vec<EngineEvent>>);

impl EventSink for CollectSink {
    fn emit(&self, event: &EngineEvent) {
        self.0.lock().expect("events").push(event.clone());
    }
}

#[test]
fn events_cover_every_job_and_the_batch() {
    let sink = Arc::new(CollectSink::default());
    let engine = Engine::new().with_sink(sink.clone());
    let batch = engine.run_batch(sample_jobs());
    assert_eq!(batch.metrics.succeeded, 3);
    let events = sink.0.lock().expect("events");
    let started = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::JobStarted { .. }))
        .count();
    let finished: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::JobFinished { index, status, .. } => Some((*index, *status)),
            _ => None,
        })
        .collect();
    assert_eq!(started, 3);
    assert_eq!(finished.len(), 3);
    assert!(finished.iter().all(|(_, s)| *s == "ok"));
    let mut indices: Vec<_> = finished.iter().map(|(i, _)| *i).collect();
    indices.sort_unstable();
    assert_eq!(indices, vec![0, 1, 2]);
    match events.last() {
        Some(EngineEvent::BatchFinished { metrics }) => {
            assert_eq!(metrics.jobs, 3);
        }
        other => panic!("expected BatchFinished last, got {other:?}"),
    }
}
