//! Observability under concurrency: span/counter aggregation must be
//! consistent and deterministic when engine workers record in parallel.

use xring_core::{NetworkSpec, SynthesisOptions};
use xring_engine::{Engine, SynthesisJob};
use xring_obs as obs;

/// Deterministic job mix: seeded irregular placements (the workspace's
/// SplitMix64-style generator) plus the paper's 8-node floorplan, all
/// with distinct cache keys so every job synthesizes exactly once.
fn jobs() -> Vec<SynthesisJob> {
    let mut jobs: Vec<SynthesisJob> = (0..4)
        .map(|i| {
            let net = NetworkSpec::irregular(6, 6_000, 0xC0FF_EE00 + i).expect("valid placement");
            SynthesisJob::new(
                format!("irr-{i}"),
                net,
                SynthesisOptions::with_wavelengths(6),
            )
        })
        .collect();
    for wl in [4, 8] {
        jobs.push(SynthesisJob::new(
            format!("proton-{wl}"),
            NetworkSpec::proton_8(),
            SynthesisOptions::with_wavelengths(wl),
        ));
    }
    jobs
}

fn run_traced(workers: usize) -> obs::Trace {
    let _lock = obs::test_guard();
    obs::start();
    let batch = Engine::new().with_workers(workers).run_batch(jobs());
    let trace = obs::finish();
    assert_eq!(batch.metrics.failed, 0, "{}", batch.metrics.summary());
    trace
}

#[test]
fn concurrent_workers_record_consistent_spans_and_counters() {
    let trace = run_traced(4);
    let n_jobs = jobs().len();

    // One batch span, one job span per job, each carrying its label.
    let batch_spans: Vec<_> = trace.spans.iter().filter(|s| s.name == "batch").collect();
    assert_eq!(batch_spans.len(), 1);
    let job_spans: Vec<_> = trace.spans.iter().filter(|s| s.name == "job").collect();
    assert_eq!(job_spans.len(), n_jobs);
    let mut labels: Vec<&str> = job_spans
        .iter()
        .map(|s| s.label.as_deref().expect("job spans are labelled"))
        .collect();
    labels.sort_unstable();
    let mut expected: Vec<String> = jobs().iter().map(|j| j.label.clone()).collect();
    expected.sort_unstable();
    assert_eq!(
        labels,
        expected.iter().map(String::as_str).collect::<Vec<_>>()
    );

    // Every synthesis attempt nests under a job span on its worker's
    // thread, and each job span contains the full phase chain.
    for synth in trace.spans.iter().filter(|s| s.name == "synth") {
        let parent = trace
            .spans
            .iter()
            .find(|s| s.id == synth.parent)
            .expect("synth span has a recorded parent");
        assert_eq!(parent.name, "job");
        assert_eq!(parent.thread, synth.thread, "span stacks are per-thread");
    }
    for phase in ["ring-milp", "shortcut", "mapping", "audit", "evaluation"] {
        let count = trace.spans.iter().filter(|s| s.name == phase).count();
        assert!(count >= n_jobs, "phase {phase}: {count} < {n_jobs}");
    }

    // Counter totals aggregate across all workers: every job solved a
    // MILP (distinct keys -> all misses, no hits).
    assert!(trace.total("milp.nodes") >= n_jobs as u64);
    assert!(trace.total("milp.lp_solves") >= n_jobs as u64);
    assert!(trace.total("simplex.pivots") > 0);
    assert_eq!(trace.total("cache.misses"), n_jobs as u64);
    assert_eq!(trace.total("cache.hits"), 0);

    // One queue-wait histogram sample per claimed job, and a wall-time
    // sample per job.
    let waits = trace
        .hist("engine.queue_wait_us")
        .expect("queue-wait histogram present");
    assert_eq!(waits.count, n_jobs as u64);
    assert!(waits.quantile(0.5) <= waits.max);
    let walls = trace
        .hist("engine.job_wall_us")
        .expect("job-wall histogram present");
    assert_eq!(walls.count, n_jobs as u64);
}

#[test]
fn counter_totals_are_worker_count_invariant() {
    // Synthesis is deterministic and every key is distinct, so the
    // solver-side totals must not depend on how jobs interleave.
    let serial = run_traced(1);
    let parallel = run_traced(4);
    for counter in [
        "milp.nodes",
        "milp.lp_solves",
        "milp.lazy_cuts",
        "milp.presolve_fixed",
        "simplex.pivots",
        "simplex.degenerate_pivots",
        "cache.misses",
        "shortcut.candidates",
        "shortcut.selected",
    ] {
        assert_eq!(
            serial.total(counter),
            parallel.total(counter),
            "{counter} differs between 1 and 4 workers"
        );
    }
}

#[test]
fn repeated_jobs_hit_the_cache_in_the_trace() {
    let _lock = obs::test_guard();
    obs::start();
    let mut batch_jobs = jobs();
    batch_jobs.extend(jobs()); // every job twice: second copy must hit
    let n = batch_jobs.len();
    let batch = Engine::new().with_workers(2).run_batch(batch_jobs);
    let trace = obs::finish();
    assert_eq!(batch.metrics.failed, 0);
    assert_eq!(
        trace.total("cache.hits") + trace.total("cache.misses"),
        n as u64
    );
    assert_eq!(trace.total("cache.hits"), batch.metrics.cache_hits as u64);
    assert!(trace.total("cache.hits") >= 1, "duplicates must hit");
}
