//! SVG rendering of synthesized XRing layouts.
//!
//! Renders the geometric artifacts of a synthesis run — node positions,
//! the realized ring (with one concentric offset track per ring
//! waveguide), shortcut corridors, ring openings and PDN sender taps —
//! into a standalone SVG string, for design review and documentation.
//!
//! # Example
//!
//! ```
//! use xring_core::{NetworkSpec, SynthesisOptions, Synthesizer};
//! use xring_viz::{render_design, RenderOptions};
//!
//! let net = NetworkSpec::proton_8();
//! let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
//!     .synthesize(&net)?;
//! let svg = render_design(&design, &RenderOptions::default());
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.ends_with("</svg>\n"));
//! # Ok::<(), xring_core::SynthesisError>(())
//! ```

pub mod render;
pub mod svg;

pub use render::{render_design, RenderOptions};
pub use svg::SvgBuilder;
