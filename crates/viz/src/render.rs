//! Rendering a synthesized design to SVG.

use crate::svg::SvgBuilder;
use xring_core::{Direction, XRingDesign};
use xring_geom::Point;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Offset between concentric ring-waveguide tracks, in µm.
    pub track_pitch_um: f64,
    /// Node marker half-size in µm.
    pub node_size_um: f64,
    /// Draw node index labels.
    pub labels: bool,
    /// Draw shortcut corridors.
    pub shortcuts: bool,
    /// Mark ring openings.
    pub openings: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            track_pitch_um: 120.0,
            node_size_um: 220.0,
            labels: true,
            shortcuts: true,
            openings: true,
        }
    }
}

/// Colour palette for ring tracks (cycled).
const TRACK_COLORS: [&str; 6] = [
    "#1f77b4", "#2ca02c", "#9467bd", "#17becf", "#8c564b", "#e377c2",
];

fn to_xy(p: Point) -> (f64, f64) {
    // SVG's y axis points down; flip so the layout reads like the paper.
    (p.x as f64, -(p.y as f64))
}

/// Renders a complete design.
///
/// One polyline track per ring waveguide (offset outward by
/// [`RenderOptions::track_pitch_um`] per level), red corridors for
/// shortcuts, white gaps + markers at ring openings, and square node
/// markers.
pub fn render_design(design: &XRingDesign, options: &RenderOptions) -> String {
    let mut svg = SvgBuilder::new();
    let cycle = &design.cycle;
    let n = cycle.len();

    // Layout centroid, for outward offsets.
    let (mut cx, mut cy) = (0.0f64, 0.0f64);
    for p in design.net.positions() {
        cx += p.x as f64;
        cy += p.y as f64;
    }
    cx /= design.net.len() as f64;
    cy /= design.net.len() as f64;

    // Ring waveguide tracks.
    for (wi, wg) in design.plan.ring_waveguides.iter().enumerate() {
        let color = TRACK_COLORS[wi % TRACK_COLORS.len()];
        let dash = match wg.direction {
            Direction::Cw => "",
            Direction::Ccw => "stroke-dasharray:60,30;",
        };
        let style = format!("stroke:{color};stroke-width:25;{dash}");
        let offset = options.track_pitch_um * wi as f64;

        // Draw each edge as its realized L-route, offset outward from the
        // centroid; skip the opened segment.
        for e in 0..n {
            let route = cycle.edge_route(e);
            let pts_raw = [route.from(), route.corner(), route.to()];
            let pts: Vec<(f64, f64)> = pts_raw
                .iter()
                .map(|p| {
                    let (x, y) = to_xy(*p);
                    // Push outward from the centroid.
                    let dx = x - cx;
                    let dy = y - (-cy);
                    let len = (dx * dx + dy * dy).sqrt().max(1.0);
                    (x + offset * dx / len, y + offset * dy / len)
                })
                .collect();
            svg.polyline(&pts, &style);
        }
        // Opening marker.
        if options.openings {
            if let Some(pos) = wg.opening {
                let (x, y) = to_xy(design.net.position(cycle.order()[pos]));
                svg.circle(
                    x,
                    y,
                    options.node_size_um * 0.75 + offset,
                    "stroke:#d62728;stroke-width:12;fill:none;stroke-dasharray:20,20",
                );
            }
        }
    }

    // Shortcut corridors.
    if options.shortcuts {
        for s in &design.shortcuts.shortcuts {
            let route = &s.route;
            let pts: Vec<(f64, f64)> = [route.from(), route.corner(), route.to()]
                .iter()
                .map(|p| to_xy(*p))
                .collect();
            let style = if s.crossing_partner.is_some() {
                "stroke:#ff7f0e;stroke-width:35"
            } else {
                "stroke:#d62728;stroke-width:35"
            };
            svg.polyline(&pts, style);
        }
    }

    // Nodes on top.
    for (i, p) in design.net.positions().iter().enumerate() {
        let (x, y) = to_xy(*p);
        svg.rect_centered(
            x,
            y,
            options.node_size_um,
            options.node_size_um,
            "fill:#ffffff;stroke:#333;stroke-width:14",
        );
        if options.labels {
            svg.text(
                x + options.node_size_um * 0.7,
                y - options.node_size_um * 0.7,
                options.node_size_um,
                &format!("n{i}"),
                "fill:#333;font-family:sans-serif",
            );
        }
    }

    svg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xring_core::{NetworkSpec, SynthesisOptions, Synthesizer};

    fn sample_design() -> XRingDesign {
        let net = NetworkSpec::proton_8();
        Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&net)
            .expect("synthesis succeeds")
    }

    #[test]
    fn render_produces_valid_svg() {
        let design = sample_design();
        let svg = render_design(&design, &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // Balanced: exactly one opening and one closing svg tag.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn every_node_is_drawn() {
        let design = sample_design();
        let svg = render_design(&design, &RenderOptions::default());
        assert_eq!(svg.matches("<rect").count(), design.net.len());
        for i in 0..design.net.len() {
            assert!(svg.contains(&format!(">n{i}</text>")), "missing label n{i}");
        }
    }

    #[test]
    fn ring_tracks_scale_with_waveguides() {
        let design = sample_design();
        let svg = render_design(&design, &RenderOptions::default());
        let polylines = svg.matches("<polyline").count();
        let expected_ring_lines = design.plan.ring_waveguides.len() * design.cycle.len();
        assert!(
            polylines >= expected_ring_lines,
            "{polylines} < {expected_ring_lines}"
        );
    }

    #[test]
    fn options_toggle_layers() {
        let design = sample_design();
        let bare = render_design(
            &design,
            &RenderOptions {
                labels: false,
                shortcuts: false,
                openings: false,
                ..RenderOptions::default()
            },
        );
        assert_eq!(bare.matches("<text").count(), 0);
        let full = render_design(&design, &RenderOptions::default());
        assert!(full.len() >= bare.len());
    }
}
