//! A minimal, dependency-free SVG document builder.

use std::fmt::Write as _;

/// Builds an SVG document incrementally.
///
/// Coordinates are given in the caller's unit (µm for layouts); the
/// builder tracks the bounding box and emits a `viewBox` with a margin,
/// so callers never scale anything themselves.
///
/// # Example
///
/// ```
/// use xring_viz::SvgBuilder;
///
/// let mut svg = SvgBuilder::new();
/// svg.line(0.0, 0.0, 100.0, 0.0, "stroke:#000;stroke-width:2");
/// svg.circle(50.0, 0.0, 4.0, "fill:#c33");
/// let doc = svg.finish();
/// assert!(doc.contains("<line"));
/// assert!(doc.contains("<circle"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SvgBuilder {
    body: String,
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    empty: bool,
}

impl SvgBuilder {
    /// An empty document.
    pub fn new() -> Self {
        SvgBuilder {
            body: String::new(),
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
            empty: true,
        }
    }

    fn cover(&mut self, x: f64, y: f64) {
        self.min_x = self.min_x.min(x);
        self.min_y = self.min_y.min(y);
        self.max_x = self.max_x.max(x);
        self.max_y = self.max_y.max(y);
        self.empty = false;
    }

    /// Adds a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, style: &str) {
        self.cover(x1, y1);
        self.cover(x2, y2);
        writeln!(
            self.body,
            r#"  <line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" style="{style}"/>"#
        )
        .expect("string writes cannot fail");
    }

    /// Adds an open polyline through the points.
    pub fn polyline(&mut self, points: &[(f64, f64)], style: &str) {
        if points.len() < 2 {
            return;
        }
        let mut attr = String::new();
        for &(x, y) in points {
            self.cover(x, y);
            write!(attr, "{x:.1},{y:.1} ").expect("string writes cannot fail");
        }
        writeln!(
            self.body,
            r#"  <polyline points="{}" fill="none" style="{style}"/>"#,
            attr.trim_end()
        )
        .expect("string writes cannot fail");
    }

    /// Adds a circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, style: &str) {
        self.cover(cx - r, cy - r);
        self.cover(cx + r, cy + r);
        writeln!(
            self.body,
            r#"  <circle cx="{cx:.1}" cy="{cy:.1}" r="{r:.1}" style="{style}"/>"#
        )
        .expect("string writes cannot fail");
    }

    /// Adds an axis-aligned rectangle centred at `(cx, cy)`.
    pub fn rect_centered(&mut self, cx: f64, cy: f64, w: f64, h: f64, style: &str) {
        let x = cx - w / 2.0;
        let y = cy - h / 2.0;
        self.cover(x, y);
        self.cover(x + w, y + h);
        writeln!(
            self.body,
            r#"  <rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" style="{style}"/>"#
        )
        .expect("string writes cannot fail");
    }

    /// Adds a text label (XML-escaped).
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str, style: &str) {
        self.cover(x, y);
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        writeln!(
            self.body,
            r#"  <text x="{x:.1}" y="{y:.1}" font-size="{size:.1}" style="{style}">{escaped}</text>"#
        )
        .expect("string writes cannot fail");
    }

    /// Number of emitted elements (lines in the body).
    pub fn element_count(&self) -> usize {
        self.body.lines().count()
    }

    /// Finalizes the document, wrapping the body in an `<svg>` element
    /// with a `viewBox` that covers everything plus a 5% margin.
    pub fn finish(self) -> String {
        let (min_x, min_y, w, h) = if self.empty {
            (0.0, 0.0, 1.0, 1.0)
        } else {
            let w = (self.max_x - self.min_x).max(1.0);
            let h = (self.max_y - self.min_y).max(1.0);
            let margin = 0.05 * w.max(h);
            (
                self.min_x - margin,
                self.min_y - margin,
                w + 2.0 * margin,
                h + 2.0 * margin,
            )
        };
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"{min_x:.1} {min_y:.1} {w:.1} {h:.1}\">\n{}</svg>\n",
            self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_document_is_valid() {
        let doc = SvgBuilder::new().finish();
        assert!(doc.starts_with("<svg"));
        assert!(doc.ends_with("</svg>\n"));
    }

    #[test]
    fn viewbox_covers_elements() {
        let mut svg = SvgBuilder::new();
        svg.line(-10.0, -20.0, 30.0, 40.0, "stroke:#000");
        let doc = svg.finish();
        // viewBox must start at or before (-10, -20) and span past (30, 40).
        let vb = doc
            .split("viewBox=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("has viewBox");
        let nums: Vec<f64> = vb.split(' ').map(|x| x.parse().expect("number")).collect();
        assert!(nums[0] <= -10.0 && nums[1] <= -20.0);
        assert!(nums[0] + nums[2] >= 30.0 && nums[1] + nums[3] >= 40.0);
    }

    #[test]
    fn text_is_escaped() {
        let mut svg = SvgBuilder::new();
        svg.text(0.0, 0.0, 10.0, "a<b&c>", "fill:#000");
        let doc = svg.finish();
        assert!(doc.contains("a&lt;b&amp;c&gt;"));
        assert!(!doc.contains("a<b"));
    }

    #[test]
    fn short_polyline_is_ignored() {
        let mut svg = SvgBuilder::new();
        svg.polyline(&[(0.0, 0.0)], "stroke:#000");
        assert_eq!(svg.element_count(), 0);
    }

    #[test]
    fn element_count_tracks_additions() {
        let mut svg = SvgBuilder::new();
        svg.line(0.0, 0.0, 1.0, 1.0, "s");
        svg.circle(0.0, 0.0, 1.0, "s");
        svg.rect_centered(0.0, 0.0, 2.0, 2.0, "s");
        assert_eq!(svg.element_count(), 3);
    }
}
