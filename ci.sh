#!/usr/bin/env sh
# Offline CI gate: formatting, lints, tier-1 build + tests.
# Everything runs with --offline; the workspace has no third-party deps.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release --offline

echo "==> cargo test -q (tier-1)"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "==> cargo test --doc (doc examples)"
cargo test -q --doc --workspace --offline

echo "==> cargo test -q --features fault-inject (robustness suite)"
cargo test -q --features fault-inject --offline
cargo test -q -p xring-engine -p xring-milp --features fault-inject --offline

echo "==> telemetry suites (obs histograms/prometheus, milp progress, convergence e2e)"
cargo test -q -p xring-obs --offline
cargo test -q -p xring-milp --offline progress
cargo test -q --offline --test convergence_telemetry

echo "==> LP backend suites (differential agreement + revised-backend fault chain)"
cargo test -q -p xring-milp --offline backend
cargo test -q --offline --features fault-inject --test fault_tolerance revised_backend

echo "==> regress --quick (pinned perf suite smoke + baseline gate)"
cargo run -q --release -p xring-bench --bin regress --offline -- \
    --quick --out target/regress-ci.json --compare BENCH_PR5.json

echo "ci: all green"
