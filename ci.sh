#!/usr/bin/env sh
# Offline CI gate: formatting, lints, tier-1 build + tests.
# Everything runs with --offline; the workspace has no third-party deps.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release --offline

echo "==> cargo test -q (tier-1)"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "==> cargo test --doc (doc examples)"
cargo test -q --doc --workspace --offline

echo "==> cargo test -q --features fault-inject (robustness suite)"
cargo test -q --features fault-inject --offline
cargo test -q -p xring-engine -p xring-milp --features fault-inject --offline
cargo test -q -p xring-engine --features fault-inject --offline --doc

echo "==> survivability suites (k-spare synthesis proof + fault-sweep Pareto)"
cargo test -q --offline --test survivability

echo "==> telemetry suites (obs histograms/prometheus, milp progress, convergence e2e)"
cargo test -q -p xring-obs --offline
cargo test -q -p xring-milp --offline progress
cargo test -q --offline --test convergence_telemetry

echo "==> LP backend suites (differential agreement + revised-backend fault chain)"
cargo test -q -p xring-milp --offline backend
cargo test -q --offline --features fault-inject --test fault_tolerance revised_backend

echo "==> parallel-BnB determinism gate (1/2/8 solver threads, bit-identical)"
cargo test -q --offline --test parallel_determinism

echo "==> serve smoke (daemon lifecycle, endpoints, drain, thread-leak check)"
# In-process lifecycle first: every endpoint once, graceful drain, and a
# /proc-based leaked-thread check. Exit code is the verdict.
cargo run -q --release -p xring-serve --bin serve-smoke --offline

# Then the real CLI binary over real sockets: start, serve, scrape, drain.
cargo build -q --release -p xring-cli --offline
serve_log="target/serve-ci.log"
serve_fifo="target/serve-ci-stdin"
rm -f "$serve_fifo"
mkfifo "$serve_fifo"
./target/release/xring serve --port 0 --max-inflight 2 --deadline-ms 30000 \
    --degradation allow <"$serve_fifo" >"$serve_log" 2>&1 &
serve_pid=$!
# Hold the fifo's write end open so the daemon's stdin does not EOF
# (stdin EOF is its second shutdown trigger, after POST /shutdown).
exec 9>"$serve_fifo"
serve_addr=""
i=0
while [ "$i" -lt 100 ]; do
    serve_addr=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$serve_log")
    [ -n "$serve_addr" ] && break
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "serve: daemon never reported a listening address" >&2
    cat "$serve_log" >&2
    exit 1
fi
curl -sf "http://$serve_addr/healthz" | grep -q '"status":"ok"'
curl -sf "http://$serve_addr/healthz" | grep -q '"uptime_s":'
curl -sf "http://$serve_addr/healthz" | grep -q '"version":"'
curl -sf -X POST "http://$serve_addr/synth" \
    -d '{"net": {"named": "proton_8"}, "options": {"max_wavelengths": 8}}' \
    | grep -q '"audit":{"clean":true'
curl -sf "http://$serve_addr/metrics" | grep -q 'xring_serve_request_wall_us_bucket'
curl -sf "http://$serve_addr/metrics" | grep -q 'xring_serve_slo_availability_burn_rate_5m'
# Flight recorder: the /synth request above must be in the debug ring,
# and its record must resolve by id with a per-phase breakdown.
curl -sf "http://$serve_addr/debug/requests" | grep -q '"route":"/synth"'
flight_id=$(curl -sf "http://$serve_addr/debug/requests" \
    | sed -n 's/.*"id":"\([0-9a-f]\{32\}\)".*/\1/p' | head -1)
if [ -z "$flight_id" ]; then
    echo "serve: flight recorder returned no request ids" >&2
    exit 1
fi
curl -sf "http://$serve_addr/debug/requests/$flight_id" | grep -q '"phases":{'
curl -sf -X POST "http://$serve_addr/shutdown" | grep -q '"status":"draining"'
# Graceful-drain check: the daemon must exit 0 on its own and report the
# drain summary; a leaked handler would hang the wait (and fail CI).
wait "$serve_pid"
exec 9>&-
rm -f "$serve_fifo"
grep -q "drained after" "$serve_log" || {
    echo "serve: daemon exited without draining" >&2
    cat "$serve_log" >&2
    exit 1
}

echo "==> fault-sweep smoke (CLI Pareto report over spare levels)"
./target/release/xring fault-sweep --grid 2x4 --wl 8 --levels 0,1 \
    | grep -q '<= pareto'

echo "==> incremental edit smoke (CLI edit loop, byte-identity check)"
./target/release/xring edit --irregular 16,5,8000 --wl 8 \
    | grep -q 'byte-identical to cold synthesis of the edited spec: yes'

echo "==> regress --quick (pinned perf suite smoke + baseline gate)"
cargo run -q --release -p xring-bench --bin regress --offline -- \
    --quick --out target/regress-ci.json --compare BENCH_PR10.json

echo "==> edit-loop gate (incremental re-synthesis must beat cold synthesis)"
edit_cold=$(tr ',{}' '\n' <target/regress-ci.json | sed -n 's/"edit_cold_wall_ms"://p')
edit_inc=$(tr ',{}' '\n' <target/regress-ci.json | sed -n 's/"edit_incremental_wall_ms"://p')
if [ -z "$edit_cold" ] || [ -z "$edit_inc" ]; then
    echo "edit-loop gate: metrics missing from target/regress-ci.json" >&2
    exit 1
fi
awk -v cold="$edit_cold" -v inc="$edit_inc" 'BEGIN { exit !(inc < cold) }' || {
    echo "edit-loop gate: incremental ${edit_inc}ms not faster than cold ${edit_cold}ms" >&2
    exit 1
}
echo "edit-loop: incremental ${edit_inc}ms vs cold ${edit_cold}ms"

echo "ci: all green"
